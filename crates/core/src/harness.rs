//! The measurement harness: the paper's §3.1 methodology, made
//! fault-tolerant.
//!
//! A [`RunConfig`] describes one experiment: which machine variant to
//! build, how many worker threads to pin where, whether cache-polluter
//! threads steal LLC capacity (Figure 4), whether workers are split across
//! sockets (Figure 6), and how long the warmup and measurement windows
//! are. [`run`] executes the experiment — warmup, statistics reset at
//! steady state (the simulator's analogue of starting the 180-second
//! VTune window after ramp-up), measurement — and returns a [`RunResult`]
//! with every derived metric the figures need.
//!
//! # Error surface
//!
//! Nothing in this module panics on bad input. Structural mistakes are
//! caught by [`RunConfig::validate`] before a single cycle is simulated
//! and reported as a typed [`ConfigError`]; [`run`] calls it for you and
//! returns `Err(HarnessError::Config(..))`. At simulation time two
//! further failure modes are surfaced:
//!
//! - **Stalls.** A forward-progress watchdog (grace period:
//!   [`RunConfig::watchdog_grace`] cycles, `0` disables) observes each
//!   measured core's committed-instruction count. A core with an attached,
//!   unfinished workload that commits nothing for a full grace period
//!   aborts the run with [`HarnessError::Stalled`] instead of burning the
//!   rest of the `max_cycles` budget on a livelock.
//! - **Truncation.** A window that hits the `max_cycles` safety cap before
//!   reaching its instruction target is *not* an error — the metrics are
//!   still internally consistent over the shorter window — but it is never
//!   silent either: the returned [`RunResult::status`] is
//!   [`RunStatus::Truncated`] with the committed/target counts (the
//!   measurement window takes precedence over warmup if both fall short).
//!   Callers that need a complete window as a hard invariant (figure
//!   campaigns) use [`run_strict`], which converts a truncated status into
//!   [`HarnessError::Truncated`] so the campaign layer can retry with a
//!   widened cycle budget.
//!
//! Deterministic fault injection for exercising these paths lives in
//! [`RunConfig::fault`]: a seeded [`FaultPlan`] perturbs DRAM latency or
//! drops prefetch issues at configurable rates, reproducibly.

use crate::errors::{AuditError, ConfigError, HarnessError};
use crate::machine::MachineConfig;
use crate::registry::Benchmark;
use crate::sampling::{self, Phase, SampleAcc, SampleSub};
use cs_memsys::stats::CoreMemStats;
use cs_memsys::{AccessClass, FaultPlan, PrefetchConfig};
use cs_trace::snap::{Dec, Enc, SnapError};
use cs_trace::WorkloadProfile;
use cs_uarch::{CoreConfig, CoreStats, Fidelity, WindowOutcome};
use serde::{Deserialize, Serialize};

/// Number of cores of the modeled machine (Table 1: two sockets of six).
const MACHINE_CORES: usize = 12;
/// Cores per socket of the modeled machine.
const MACHINE_CPS: usize = 6;

/// Fraction-of-cycles execution breakdown (Figure 1 bar).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Committing cycles attributed to the application.
    pub committing_app: f64,
    /// Committing cycles attributed to the OS.
    pub committing_os: f64,
    /// Stalled cycles attributed to the application.
    pub stalled_app: f64,
    /// Stalled cycles attributed to the OS.
    pub stalled_os: f64,
    /// The overlapped memory-cycles bar.
    pub memory: f64,
}

/// Experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Worker threads running the workload (the paper limits workloads to
    /// four cores).
    pub workers: usize,
    /// Enable SMT: two workload threads per core (Figure 3).
    pub smt: bool,
    /// Place workers alternately on the two sockets (the Figure 6
    /// read-write sharing methodology).
    pub split_sockets: bool,
    /// Dedicate two cores to cache-polluter threads walking arrays of this
    /// total size (the Figure 4 methodology; §3.1).
    pub polluter_bytes: Option<u64>,
    /// Override the LLC capacity directly.
    pub llc_bytes: Option<u64>,
    /// Override the prefetcher configuration (Figure 5).
    pub prefetch: Option<PrefetchConfig>,
    /// Override the core configuration (§4.2 ablations).
    pub core: Option<CoreConfig>,
    /// Override the L1 instruction cache capacity (the §4.1 frontend
    /// opportunity study).
    pub l1i_bytes: Option<u64>,
    /// Override the private L2 capacity (the §4.3 two-level-hierarchy
    /// ablation).
    pub l2_bytes: Option<u64>,
    /// Override the number of DRAM channels (the §4.4 bandwidth
    /// scale-back ablation).
    pub dram_channels: Option<usize>,
    /// Override the LLC hit latency and the remote-snoop extra latency,
    /// `(llc, snoop_extra)` — a proxy for a narrower, slower on-chip
    /// interconnect (the §4.4 interconnect scale-back ablation).
    pub interconnect_latency: Option<(u32, u32)>,
    /// Warmup instructions (total across workers) before statistics reset.
    pub warmup_instr: u64,
    /// Measured instructions (total across workers).
    pub measure_instr: u64,
    /// Safety cap on simulated cycles per window.
    pub max_cycles: u64,
    /// Base random seed.
    pub seed: u64,
    /// Forward-progress watchdog grace period in cycles: a measured core
    /// that commits nothing for this long aborts the run with
    /// [`HarnessError::Stalled`]. `0` disables the watchdog.
    #[serde(default = "default_watchdog_grace")]
    pub watchdog_grace: u64,
    /// Worker threads the campaign and sweep layers may fan independent
    /// runs over ([`crate::par::par_map`]). `1` (the default) runs
    /// everything serially on the calling thread. This knob never touches
    /// a single simulated run — every run is seeded and single-threaded —
    /// so results are byte-identical at any value, and it is deliberately
    /// excluded from the campaign resume fingerprint.
    #[serde(default = "default_jobs")]
    pub jobs: usize,
    /// Optional deterministic fault-injection plan (tests and robustness
    /// studies; `None` for every real measurement).
    #[serde(default)]
    pub fault: Option<FaultPlan>,
    /// Event-driven cycle skipping: jump the simulator over certified-dead
    /// stall spans instead of ticking them (default on). Results are
    /// byte-identical either way — the switch (`--no-skip` /
    /// `CS_NO_SKIP=1`) exists so any suspected divergence is bisectable
    /// with one flag flip. Like `jobs`, it never changes what is
    /// simulated, so it is excluded from the campaign resume fingerprint.
    #[serde(default = "default_cycle_skip")]
    pub cycle_skip: bool,
    /// SMARTS-style statistical sampling: number of detailed measurement
    /// windows. `0` (the default) disables sampling entirely — the
    /// measurement window runs in full detail exactly as before, and the
    /// simulated bytes are untouched by this PR. With `K > 0`, the
    /// measurement budget `measure_instr` is split over `K` short detailed
    /// windows separated by functional fast-forward spans that keep the
    /// caches, TLBs, prefetcher tables and branch predictor warming
    /// ([`cs_uarch::Fidelity::Functional`]).
    #[serde(default)]
    pub sample_windows: usize,
    /// Instructions (total across workers) fast-forwarded functionally
    /// before each measurement window. Must be nonzero when
    /// `sample_windows > 0`.
    #[serde(default)]
    pub sample_period: u64,
    /// Detailed-mode warmup instructions re-warming the ROB/LSQ and other
    /// un-warmed pipeline state after each functional span, excluded from
    /// measurement (the SMARTS "detailed warming" knob). `0` drops
    /// straight from functional into measurement.
    #[serde(default)]
    pub sample_warmup_instr: u64,
    /// Overlapped window-parallel sampling: at each window boundary the
    /// chip state is snapshotted and that window's detailed `Warm→Measure`
    /// excursion runs on a worker chip restored from the snapshot, while
    /// functional warming streams ahead toward the next boundary. This
    /// CHANGES the simulated schedule relative to the sequential sampler
    /// (each window becomes an isolated excursion instead of feeding the
    /// next fast-forward span), so — unlike `jobs` — it IS part of the
    /// campaign resume fingerprint whenever sampling is enabled. For a
    /// fixed `window_par` value the results are byte-identical at any
    /// `jobs`/`sample_inflight` setting. Ignored when
    /// `sample_windows == 0`, so a blanket `CS_WINDOW_PAR=1` never
    /// perturbs non-sampled experiments.
    #[serde(default)]
    pub window_par: bool,
    /// Bound on dispatched-but-unfolded window snapshots the
    /// window-parallel sampler keeps alive at once (a memory bound: each
    /// pending window holds one full chip snapshot). The effective window
    /// concurrency is `min(jobs, sample_inflight)`. Pure scheduling —
    /// excluded from the campaign resume fingerprint, like `jobs`. Must be
    /// nonzero.
    #[serde(default = "default_sample_inflight")]
    pub sample_inflight: usize,
    /// Way-partition the shared LLC between co-located tenants (the CAT
    /// mitigation of the interference study): tenant `t` may only
    /// *allocate* lines in the ways of `llc_way_masks[t]`. Hits are served
    /// from any way, so partitioning changes victim choice, never
    /// correctness. `None` (the default) leaves allocation unrestricted; a
    /// tenant beyond the list is likewise unrestricted.
    #[serde(default)]
    pub llc_way_masks: Option<Vec<u64>>,
    /// Throttle each tenant's DRAM bandwidth to `dram_budgets[t]` bytes
    /// per [`RunConfig::dram_budget_window`] cycles (the token-bucket
    /// mitigation of the interference study). Over-budget demand misses
    /// are deferred to the next window boundary — the delay folds into
    /// the miss latency, so cycle skipping stays sound. `None` disables
    /// throttling; a tenant beyond the list is unthrottled.
    #[serde(default)]
    pub dram_budgets: Option<Vec<u64>>,
    /// Cycle length of one bandwidth-accounting window (only meaningful
    /// with `dram_budgets` set).
    #[serde(default = "default_dram_budget_window")]
    pub dram_budget_window: u64,
    /// Restrict the interference-matrix experiment to these roster keys
    /// (e.g. `["web_search", "polluter"]`), for smoke runs and CI. `None`
    /// runs the full roster. Ignored by every other experiment.
    #[serde(default)]
    pub matrix_workloads: Option<Vec<String>>,
    /// Restrict the fleet-resilience experiment to these scenario keys
    /// (e.g. `["metastable"]`), for smoke runs and CI. `None` runs every
    /// scenario. Ignored by every other experiment.
    #[serde(default)]
    pub fleet_scenarios: Option<Vec<String>>,
}

fn default_dram_budget_window() -> u64 {
    cs_memsys::QosConfig::default_window()
}

fn default_watchdog_grace() -> u64 {
    1_500_000
}

fn default_jobs() -> usize {
    1
}

fn default_cycle_skip() -> bool {
    true
}

fn default_sample_inflight() -> usize {
    4
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            smt: false,
            split_sockets: false,
            polluter_bytes: None,
            llc_bytes: None,
            prefetch: None,
            core: None,
            l1i_bytes: None,
            l2_bytes: None,
            dram_channels: None,
            interconnect_latency: None,
            warmup_instr: 1_600_000,
            measure_instr: 3_200_000,
            max_cycles: 60_000_000,
            seed: 42,
            watchdog_grace: default_watchdog_grace(),
            jobs: default_jobs(),
            fault: None,
            cycle_skip: default_cycle_skip(),
            sample_windows: 0,
            sample_period: 0,
            sample_warmup_instr: 0,
            window_par: false,
            sample_inflight: default_sample_inflight(),
            llc_way_masks: None,
            dram_budgets: None,
            dram_budget_window: default_dram_budget_window(),
            matrix_workloads: None,
            fleet_scenarios: None,
        }
    }
}

impl RunConfig {
    /// A faster configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self { warmup_instr: 400_000, measure_instr: 800_000, ..Self::default() }
    }

    /// Chooses the global core ids the workers run on.
    pub fn worker_cores(&self, cores_per_socket: usize) -> Vec<usize> {
        if self.split_sockets {
            // Alternate sockets: 0, 6, 1, 7, ... for cps = 6.
            (0..self.workers).map(|i| (i % 2) * cores_per_socket + i / 2).collect()
        } else {
            (0..self.workers).collect()
        }
    }

    /// Global core ids of the polluter cores, if enabled.
    pub fn polluter_cores(&self, cores_per_socket: usize) -> Vec<usize> {
        if self.polluter_bytes.is_none() {
            return Vec::new();
        }
        // Two dedicated cores on socket 0, after the workers (§3.1).
        let base = if self.split_sockets { self.workers.div_ceil(2) } else { self.workers };
        vec![base.min(cores_per_socket - 2), (base + 1).min(cores_per_socket - 1)]
    }

    /// Checks the configuration against the modeled machine's geometry
    /// (two sockets of six cores; Table 1 cache associativities) before
    /// any simulation work.
    ///
    /// Rejected configurations: zero workers, thread placements that fall
    /// off the chip or land workers and polluters on the same core, zero
    /// DRAM channels, cache-capacity overrides that do not fit the level's
    /// geometry, degenerate windows (`measure_instr == 0` or
    /// `max_cycles == 0`), and sampling that could never run
    /// (`sample_windows > 0` with a zero `sample_period`, or more windows
    /// than measured instructions).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::NoWorkers);
        }
        if self.measure_instr == 0 {
            return Err(ConfigError::ZeroWindow { which: "measure_instr" });
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::ZeroWindow { which: "max_cycles" });
        }
        if self.jobs == 0 {
            return Err(ConfigError::ZeroJobs);
        }
        if self.sample_inflight == 0 {
            return Err(ConfigError::ZeroWindow { which: "sample_inflight" });
        }
        if self.sample_windows > 0 {
            if self.sample_period == 0 {
                return Err(ConfigError::ZeroWindow { which: "sample_period" });
            }
            if (self.sample_windows as u64) > self.measure_instr {
                return Err(ConfigError::SampleWindowsExceedMeasure {
                    windows: self.sample_windows,
                    measure_instr: self.measure_instr,
                });
            }
        }
        if self.dram_channels == Some(0) {
            return Err(ConfigError::ZeroDramChannels);
        }
        if let Some(masks) = &self.llc_way_masks {
            let assoc = cs_memsys::CacheConfig::llc().assoc;
            let legal = (1u64 << assoc) - 1;
            for (tenant, &mask) in masks.iter().enumerate() {
                if mask == 0 || mask & !legal != 0 {
                    return Err(ConfigError::InvalidWayMask { tenant, mask, assoc });
                }
            }
        }
        if let Some(budgets) = &self.dram_budgets {
            if self.dram_budget_window == 0 {
                return Err(ConfigError::ZeroWindow { which: "dram_budget_window" });
            }
            for (tenant, &bytes) in budgets.iter().enumerate() {
                if bytes < 64 {
                    return Err(ConfigError::BudgetBelowLineSize { tenant, bytes });
                }
            }
        }
        if let Some(wanted) = &self.matrix_workloads {
            // Catch a roster typo at campaign startup, not after every
            // earlier experiment has already run.
            for name in wanted {
                let known = crate::experiments::interference_matrix::ROSTER_KEYS
                    .contains(&name.as_str());
                if !known {
                    return Err(ConfigError::UnknownMatrixWorkload { name: name.clone() });
                }
            }
        }
        if let Some(wanted) = &self.fleet_scenarios {
            for name in wanted {
                if crate::experiments::fleet_resilience::Scenario::from_key(name).is_none() {
                    return Err(ConfigError::UnknownFleetScenario { name: name.clone() });
                }
            }
        }
        // Capacity overrides must respect the level's fixed geometry: a
        // whole number of sets, i.e. a positive multiple of assoc * 64
        // (Table 1: 16-way LLC, 8-way L1-I and L2). Non-power-of-two
        // capacities are fine — the modulo-indexed 12 MB LLC is one.
        let checks = [
            ("llc_bytes", self.llc_bytes, cs_memsys::CacheConfig::llc().assoc),
            ("l1i_bytes", self.l1i_bytes, cs_memsys::CacheConfig::l1().assoc),
            ("l2_bytes", self.l2_bytes, cs_memsys::CacheConfig::l2().assoc),
        ];
        for (which, bytes, assoc) in checks {
            if let Some(bytes) = bytes {
                let lines = bytes / 64;
                if bytes == 0 || bytes % 64 != 0 || lines % assoc as u64 != 0 {
                    return Err(ConfigError::InvalidCacheSize { which, bytes });
                }
            }
        }
        let workers = self.worker_cores(MACHINE_CPS);
        let polluters = self.polluter_cores(MACHINE_CPS);
        for &core in workers.iter().chain(&polluters) {
            if core >= MACHINE_CORES {
                return Err(ConfigError::PlacementExceedsCores {
                    core,
                    available: MACHINE_CORES,
                });
            }
        }
        if let Some(&core) = workers.iter().find(|c| polluters.contains(c)) {
            return Err(ConfigError::PlacementOverlap { core });
        }
        Ok(())
    }
}

/// How a run's measurement discipline held up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Both windows committed their full instruction targets.
    Completed,
    /// A window hit the `max_cycles` safety cap first. The metrics cover
    /// the shorter window and are internally consistent, but the run does
    /// not satisfy the §3.1 fixed-window discipline. If both windows fell
    /// short, the counts describe the measurement window.
    Truncated {
        /// Instructions committed before the cap.
        committed: u64,
        /// The instruction target the window was supposed to reach.
        target: u64,
    },
}

impl RunStatus {
    /// Whether the run completed its full windows.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// Per-window measurements of one sampled run (empty when sampling is
/// disabled). Cycle buckets are summed across the worker cores, so the
/// breakdown partition invariant is
/// `committing[0] + committing[1] + stalled[0] + stalled[1] ==
/// cycles * n_workers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Cycles the detailed measurement window spanned.
    pub cycles: u64,
    /// Instructions the workers committed in the window.
    pub instructions: u64,
    /// Committing cycles summed over worker cores, `[app, os]`.
    pub committing: [u64; 2],
    /// Stalled cycles summed over worker cores, `[app, os]`.
    pub stalled: [u64; 2],
    /// Overlapped memory cycles summed over worker cores.
    pub memory_cycles: u64,
    /// Application requests completed during the window (0 when the
    /// workload has no request meter).
    pub requests: u64,
}

impl WindowSample {
    /// Per-core IPC of this window, over `n_workers` cores.
    pub fn ipc(&self, n_workers: usize) -> f64 {
        cs_perf::ratio(self.instructions, self.cycles * n_workers as u64)
    }
}

/// Per-tenant accounting of one (possibly co-located) run. A solo run has
/// exactly one entry covering all worker cores; a co-located run
/// ([`run_colocated`]) has one entry per benchmark, each owning a disjoint
/// chunk of the worker cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// The tenant's benchmark name.
    pub name: String,
    /// Global core ids this tenant's threads are pinned to.
    pub cores: Vec<usize>,
    /// Instructions the tenant committed over the measurement window.
    pub instructions: u64,
    /// LLC lines the tenant owned at the end of the run — an end-state
    /// occupancy snapshot, not a window average.
    pub llc_lines: u64,
    /// DRAM bytes the tenant's cores moved over the measurement window.
    pub dram_bytes: u64,
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub name: String,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Core statistics of the measured (worker) cores.
    pub cores: Vec<CoreStats>,
    /// Memory statistics of the measured (worker) cores.
    pub mem: Vec<CoreMemStats>,
    /// Memory statistics of the polluter cores (for capacity verification).
    pub polluter_mem: Vec<CoreMemStats>,
    /// DRAM subsystem totals over the window.
    pub dram: cs_memsys::dram::DramStats,
    /// Peak off-chip bytes per cycle (whole machine).
    pub peak_bytes_per_cycle: f64,
    /// Number of worker cores measured.
    pub n_workers: usize,
    /// Application requests completed in the measurement window, when the
    /// workload meters them (the mini applications do; statistical
    /// profiles do not).
    pub requests: Option<u64>,
    /// Whether the warmup and measurement windows committed their full
    /// instruction targets, or were truncated by the cycle cap.
    pub status: RunStatus,
    /// Total cycles simulated over the whole run (polluter pre-warm,
    /// warmup and measurement), for the skipped-fraction denominator.
    pub cycles_total: u64,
    /// Of [`RunResult::cycles_total`], cycles covered by event-driven
    /// jumps rather than stepped individually (`0` with `cycle_skip`
    /// off). Inspectability only: no figure metric is derived from it.
    pub cycles_skipped: u64,
    /// Per-window measurements when SMARTS sampling is enabled
    /// ([`RunConfig::sample_windows`] > 0); empty otherwise. The
    /// aggregate fields above ([`RunResult::cycles`],
    /// [`RunResult::cores`], [`RunResult::mem`], ...) then cover the
    /// union of the measurement windows only — functional fast-forward
    /// and detailed re-warm spans are excluded, exactly as warmup is.
    pub samples: Vec<WindowSample>,
    /// Per-tenant accounting: one entry per co-located benchmark (a solo
    /// run has one entry spanning every worker core). Entry `t` covers the
    /// contiguous chunk `cores[t*w .. (t+1)*w]` of the per-core vectors,
    /// where `w` is [`RunConfig::workers`].
    pub tenants: Vec<TenantUsage>,
}

impl RunResult {
    fn core_sum<F: Fn(&CoreStats) -> u64>(&self, f: F) -> u64 {
        self.cores.iter().map(f).sum()
    }

    fn mem_sum<F: Fn(&CoreMemStats) -> u64>(&self, f: F) -> u64 {
        self.mem.iter().map(f).sum()
    }

    /// Total instructions committed by the workers.
    pub fn instructions(&self) -> u64 {
        self.core_sum(|c| c.instructions())
    }

    /// Per-core IPC (all privileges).
    pub fn ipc(&self) -> f64 {
        cs_perf::ratio(self.instructions(), self.cycles * self.cores.len() as u64)
    }

    /// Per-core application IPC (the Figure 3 / Figure 4 metric).
    pub fn app_ipc(&self) -> f64 {
        cs_perf::ratio(self.core_sum(|c| c.committed[0]), self.cycles * self.cores.len() as u64)
    }

    /// MLP averaged over the measured cores (§3.1 methodology).
    pub fn mlp(&self) -> f64 {
        let sum: f64 = self.cores.iter().map(|c| c.mlp()).sum();
        sum / self.cores.len().max(1) as f64
    }

    /// The Figure 1 execution-time breakdown, averaged over worker cores.
    pub fn breakdown(&self) -> Breakdown {
        let total = self.cycles as f64 * self.cores.len() as f64;
        Breakdown {
            committing_app: self.core_sum(|c| c.committing_cycles[0]) as f64 / total,
            committing_os: self.core_sum(|c| c.committing_cycles[1]) as f64 / total,
            stalled_app: self.core_sum(|c| c.stalled_cycles[0]) as f64 / total,
            stalled_os: self.core_sum(|c| c.stalled_cycles[1]) as f64 / total,
            memory: self.core_sum(|c| c.memory_cycles) as f64 / total,
        }
    }

    /// L1-I misses per kilo-instruction, `(application, os)` (Figure 2).
    pub fn l1i_mpki(&self) -> (f64, f64) {
        let k = self.instructions();
        (
            cs_perf::mpki(self.mem_sum(|m| m.l1i.misses(AccessClass::InstrUser)), k),
            cs_perf::mpki(self.mem_sum(|m| m.l1i.misses(AccessClass::InstrKernel)), k),
        )
    }

    /// L2 instruction misses per kilo-instruction, `(application, os)`
    /// (Figure 2).
    pub fn l2i_mpki(&self) -> (f64, f64) {
        let k = self.instructions();
        (
            cs_perf::mpki(self.mem_sum(|m| m.l2.misses(AccessClass::InstrUser)), k),
            cs_perf::mpki(self.mem_sum(|m| m.l2.misses(AccessClass::InstrKernel)), k),
        )
    }

    /// Overall L2 demand hit ratio (Figure 5 metric).
    pub fn l2_hit_ratio(&self) -> f64 {
        cs_perf::ratio(
            self.mem_sum(|m| m.l2.total_hits()),
            self.mem_sum(|m| m.l2.total_accesses()),
        )
    }

    /// Read-write shared LLC data references as a percentage of LLC data
    /// references, `(application, os)` (Figure 6).
    pub fn rw_shared_pct(&self) -> (f64, f64) {
        let refs = self.mem_sum(|m| m.llc_data_refs());
        (
            cs_perf::percent(self.mem_sum(|m| m.rw_shared[0]), refs),
            cs_perf::percent(self.mem_sum(|m| m.rw_shared[1]), refs),
        )
    }

    /// Off-chip bandwidth utilization as a percentage of the available
    /// per-core bandwidth, `(application, os)` (Figure 7).
    pub fn bandwidth_pct(&self) -> (f64, f64) {
        // Available per-core bandwidth: the machine peak divided evenly
        // over the active worker cores, as in the paper's per-core figure.
        let per_core = self.peak_bytes_per_cycle / self.n_workers as f64;
        let denom = per_core * self.cycles as f64 * self.cores.len() as f64;
        (
            100.0 * self.mem_sum(|m| m.dram_bytes[0]) as f64 / denom,
            100.0 * self.mem_sum(|m| m.dram_bytes[1]) as f64 / denom,
        )
    }

    /// Service throughput in requests per kilo-cycle, when metered.
    pub fn requests_per_kcycle(&self) -> Option<f64> {
        self.requests.map(|r| 1000.0 * r as f64 / self.cycles as f64)
    }

    /// Fraction of all simulated cycles the event-driven fast path jumped
    /// over instead of stepping — the inspectable basis of the speedup
    /// claim (`0.0` when `cycle_skip` is off).
    pub fn skipped_fraction(&self) -> f64 {
        cs_perf::ratio(self.cycles_skipped, self.cycles_total)
    }

    /// Per-core IPC of tenant `t` (all privileges), over the cores the
    /// tenant owns. Panics if `t` is out of range.
    pub fn tenant_ipc(&self, t: usize) -> f64 {
        let u = &self.tenants[t];
        cs_perf::ratio(u.instructions, self.cycles * u.cores.len() as u64)
    }

    /// Tenant `t`'s share of the occupied LLC lines at end of run, as a
    /// percentage of all tenants' lines (not of total capacity).
    pub fn tenant_llc_share_pct(&self, t: usize) -> f64 {
        let total: u64 = self.tenants.iter().map(|u| u.llc_lines).sum();
        cs_perf::percent(self.tenants[t].llc_lines, total)
    }

    /// Tenant `t`'s share of the DRAM bytes the workers moved over the
    /// measurement window, as a percentage.
    pub fn tenant_dram_share_pct(&self, t: usize) -> f64 {
        let total: u64 = self.tenants.iter().map(|u| u.dram_bytes).sum();
        cs_perf::percent(self.tenants[t].dram_bytes, total)
    }

    /// LLC hit ratio achieved by the polluter threads (the §3.1 check that
    /// the polluters "achieve nearly 100% hit ratio in the LLC").
    pub fn polluter_llc_hit_ratio(&self) -> f64 {
        cs_perf::ratio(
            self.polluter_mem.iter().map(|m| m.llc.total_hits()).sum(),
            self.polluter_mem.iter().map(|m| m.llc.total_accesses()).sum(),
        )
    }
}

/// Cycles the polluter threads run alone before any workload thread is
/// attached (§3.1: the polluter processes start with the system, so their
/// arrays are LLC-resident before the workload arrives).
const PREWARM_CYCLES: u64 = 800_000;

/// Cycle-budget granularity at which a checkpointed run returns control to
/// the harness between simulation slices. This value never affects results:
/// [`cs_uarch::Chip::step_watched`] sizes its internal strides independently
/// of the budget, and [`cs_uarch::Chip::run_cycles`] distributes over any
/// partition of a span — the constant only bounds how stale a snapshot or a
/// stop response can be.
const CKPT_SLICE: u64 = 65_536;

/// Whether the optional end-of-run conservation auditor is enabled:
/// `CS_PARANOID` set to anything but empty or `0`.
pub(crate) fn paranoid_enabled() -> bool {
    std::env::var("CS_PARANOID").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// Conservation checks over a finished result: the cycle breakdown must
/// partition each measured core's window exactly, the cycle skipper cannot
/// have jumped more cycles than elapsed, and no cache level may report more
/// hits than accesses. A sampled result must additionally satisfy the same
/// partition law inside every measurement window, and its windows'
/// instruction counts must sum to the configured measurement budget when
/// the run completed. These hold by construction; a violation means a
/// counter bug or a checkpoint/restore gap, and the result is withheld.
pub fn audit(r: &RunResult) -> Result<(), AuditError> {
    for (i, s) in r.samples.iter().enumerate() {
        let classified = s.committing[0] + s.committing[1] + s.stalled[0] + s.stalled[1];
        let span = s.cycles * r.cores.len() as u64;
        if classified != span {
            return Err(AuditError::WindowBreakdown { window: i, classified, cycles: span });
        }
    }
    if !r.samples.is_empty() && r.status.is_complete() {
        let summed: u64 = r.samples.iter().map(|s| s.instructions).sum();
        if summed != r.instructions() {
            return Err(AuditError::WindowInstructionSum {
                summed,
                total: r.instructions(),
            });
        }
    }
    if r.cycles_skipped > r.cycles_total {
        return Err(AuditError::SkipExceedsTotal {
            skipped: r.cycles_skipped,
            total: r.cycles_total,
        });
    }
    for (i, c) in r.cores.iter().enumerate() {
        let classified = c.committing_cycles[0]
            + c.committing_cycles[1]
            + c.stalled_cycles[0]
            + c.stalled_cycles[1];
        if classified != r.cycles {
            return Err(AuditError::CycleBreakdown { core: i, classified, cycles: r.cycles });
        }
    }
    for (i, m) in r.mem.iter().enumerate() {
        let levels =
            [("l1i", &m.l1i), ("l1d", &m.l1d), ("l2", &m.l2), ("llc", &m.llc)];
        for (level, stats) in levels {
            for k in 0..stats.hits.len() {
                if stats.hits[k] > stats.accesses[k] {
                    return Err(AuditError::HitsExceedAccesses {
                        core: i,
                        level,
                        hits: stats.hits[k],
                        accesses: stats.accesses[k],
                    });
                }
            }
        }
    }
    Ok(())
}

/// Runs `bench` under `cfg` and returns the measured result.
///
/// The configuration is validated first ([`RunConfig::validate`]); a run
/// that stops committing trips the forward-progress watchdog
/// ([`HarnessError::Stalled`]). A window truncated by the cycle cap is
/// reported in [`RunResult::status`], never silently — use [`run_strict`]
/// if truncation should be an error.
///
/// # Checkpointing
///
/// When a [`crate::checkpoint::CheckpointCtl`] is installed on the calling
/// thread (via [`crate::checkpoint::with_checkpointing`]), the run becomes
/// resumable: a snapshot of the complete simulation state is written
/// atomically every [`crate::checkpoint::CheckpointCtl::cadence_cycles`]
/// simulated cycles, and on a stop request the run saves a final snapshot
/// and returns [`HarnessError::Interrupted`]. A later call with the same
/// benchmark and configuration (under the same checkpoint directory)
/// restores the snapshot and continues; results are byte-identical to an
/// uninterrupted run. Without an installed control, nothing here changes.
pub fn run(bench: &Benchmark, cfg: &RunConfig) -> Result<RunResult, HarnessError> {
    run_colocated(std::slice::from_ref(bench), cfg)
}

/// Runs several benchmarks co-located as tenants on one chip, sharing the
/// LLC and the DRAM channels (the interference-matrix methodology).
///
/// Tenant `t` gets its own `cfg.workers`-core chunk of the worker
/// placement — `worker_cores[t*w .. (t+1)*w]` — so validation and
/// placement see `cfg.workers * benches.len()` total workers. The warmup
/// and measurement instruction targets remain totals across *all*
/// workers, exactly as in a solo run. Per-tenant accounting lands in
/// [`RunResult::tenants`]; the QoS mitigations
/// ([`RunConfig::llc_way_masks`], [`RunConfig::dram_budgets`]) partition
/// the LLC ways and throttle per-tenant DRAM bandwidth respectively.
///
/// A one-element slice is *byte-identical* to [`run`] with QoS off: the
/// single tenant's id is 0 everywhere, the full way mask degenerates to
/// the unmasked victim scan, and no regulator is built. Everything [`run`]
/// documents — validation, watchdog, truncation, checkpoint/resume —
/// applies unchanged; the checkpoint unit is keyed by the `+`-joined
/// benchmark names, so co-located and solo runs never share a snapshot.
pub fn run_colocated(benches: &[Benchmark], cfg: &RunConfig) -> Result<RunResult, HarnessError> {
    if benches.is_empty() {
        return Err(ConfigError::NoWorkers.into());
    }
    // Placement, validation and instruction targets all see the total
    // worker count; the per-tenant chunk size is what the caller set.
    let per_tenant = cfg.workers;
    let eff = RunConfig { workers: cfg.workers * benches.len(), ..cfg.clone() };
    eff.validate()?;
    let cfg = &eff;
    let unit_name = benches.iter().map(|b| b.name()).collect::<Vec<_>>().join("+");
    let mut machine = MachineConfig::x5670(MACHINE_CORES);
    if cfg.smt {
        machine = machine.with_smt();
    }
    if let Some(llc) = cfg.llc_bytes {
        machine = machine.with_llc_bytes(llc);
    }
    if let Some(pf) = cfg.prefetch {
        machine = machine.with_prefetch(pf);
    }
    if let Some(core) = cfg.core {
        machine.core = core;
        if cfg.smt {
            machine.core.smt_threads = 2;
        }
    }
    if let Some(l1i) = cfg.l1i_bytes {
        machine.mem.l1i = machine.mem.l1i.with_size(l1i);
    }
    if let Some(l2) = cfg.l2_bytes {
        machine.mem.l2 = machine.mem.l2.with_size(l2);
    }
    if let Some(ch) = cfg.dram_channels {
        machine.mem.dram.channels = ch;
    }
    if let Some((llc_lat, snoop_extra)) = cfg.interconnect_latency {
        machine.mem.llc.latency = llc_lat;
        machine.mem.remote_snoop_extra = snoop_extra;
    }
    machine.mem.fault = cfg.fault;
    machine.mem.qos = cs_memsys::QosConfig {
        llc_way_masks: cfg.llc_way_masks.clone(),
        dram_budgets: cfg.dram_budgets.clone(),
        dram_budget_window: cfg.dram_budget_window,
    };
    let cps = machine.mem.cores_per_socket;
    let worker_cores = cfg.worker_cores(cps);
    let polluter_cores = cfg.polluter_cores(cps);

    // The tenant map is configuration, not simulated state: it is applied
    // to every chip this run builds (fresh, or rebuilt after a quarantined
    // snapshot) and never serialized, so the restore path sees the same
    // tags as the fresh path. Polluter cores stay tenant 0.
    let apply_tenants = |chip: &mut cs_uarch::Chip| {
        for (i, &core) in worker_cores.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            chip.set_tenant(core, (i / per_tenant) as u8);
        }
    };

    let mut chip = machine.build();
    chip.set_cycle_skip(cfg.cycle_skip);
    apply_tenants(&mut chip);

    // Checkpoint bookkeeping. Without an installed control every branch
    // below is inert and the run proceeds exactly as before.
    let ckpt = crate::checkpoint::current();
    let key = ckpt
        .as_ref()
        .map(|c| crate::checkpoint::unit_key(&c.scope, &unit_name, cfg))
        .unwrap_or(0);
    let ckpt_path = ckpt.as_ref().map(|c| {
        let file = crate::checkpoint::unit_file(key);
        c.note_used(&file);
        c.dir.join(file)
    });

    // Polluters walk half the stolen capacity each (§3.1); they exist from
    // cycle zero, before any workload thread.
    let attach_polluters = |chip: &mut cs_uarch::Chip| {
        if let Some(bytes) = cfg.polluter_bytes {
            let per = (bytes / polluter_cores.len() as u64).max(64 * 1024);
            for (i, &core) in polluter_cores.iter().enumerate() {
                let profile = WorkloadProfile::polluter(per);
                chip.attach(core, Box::new(profile.build_source(100 + i, cfg.seed)));
                if cfg.smt {
                    let profile = WorkloadProfile::polluter(per);
                    chip.attach(core, Box::new(profile.build_source(110 + i, cfg.seed)));
                }
            }
        }
    };
    // Workload threads: one per hardware context, with request meters where
    // the workload provides them. Attached only when pre-warm ends, so the
    // attach order (polluters, then workers) is identical on the fresh and
    // the restore path.
    let threads_per_core = if cfg.smt { 2 } else { 1 };
    let attach_workers = |chip: &mut cs_uarch::Chip| {
        let mut meters = Vec::new();
        for (i, &core) in worker_cores.iter().enumerate() {
            let bench = &benches[i / per_tenant];
            for t in 0..threads_per_core {
                let thread_id = i * threads_per_core + t;
                let (source, meter) = bench.build_source_metered(thread_id, cfg.seed);
                chip.attach(core, source);
                meters.extend(meter);
            }
        }
        meters
    };
    // Builds a fresh chip with every thread attached (the restore-path
    // attach order: polluters, then workers), ready to receive a window
    // snapshot — the window-parallel worker recipe, identical to the
    // quarantine-rebuild path above.
    let build_worker = || -> (cs_uarch::Chip, Vec<std::sync::Arc<std::sync::atomic::AtomicU64>>) {
        let mut worker_chip = machine.build();
        worker_chip.set_cycle_skip(cfg.cycle_skip);
        apply_tenants(&mut worker_chip);
        attach_polluters(&mut worker_chip);
        let worker_meters = attach_workers(&mut worker_chip);
        (worker_chip, worker_meters)
    };

    // Restore a prior snapshot if one exists for this exact unit. Any
    // defect — missing, corrupt, version skew, topology mismatch — degrades
    // to a fresh run, which produces the same bytes anyway.
    let mut meters = Vec::new();
    let mut resumed = None;
    if let Some(path) = ckpt_path.as_deref() {
        if let Some(payload) = crate::checkpoint::load_envelope(path, key) {
            let mut attempt = || -> Result<Phase, SnapError> {
                let mut d = Dec::new(&payload);
                let phase = Phase::decode_snap(&mut d)?;
                attach_polluters(&mut chip);
                if !matches!(phase, Phase::PreWarm { .. }) {
                    meters = attach_workers(&mut chip);
                }
                chip.restore_snap(&mut d)?;
                d.finish()?;
                Ok(phase)
            };
            match attempt() {
                Ok(phase) => resumed = Some(phase),
                Err(e) => {
                    // The envelope checksum held but the payload no longer
                    // decodes (format drift or a writer bug): structural —
                    // move the evidence aside and start fresh.
                    crate::checkpoint::quarantine(path, &format!("payload decode: {e:?}"));
                    chip = machine.build();
                    chip.set_cycle_skip(cfg.cycle_skip);
                    apply_tenants(&mut chip);
                    meters.clear();
                }
            }
        }
    }
    let mut phase = match resumed {
        Some(p) => p,
        None => {
            attach_polluters(&mut chip);
            Phase::PreWarm { cycles_done: 0 }
        }
    };

    let prewarm_target = if cfg.polluter_bytes.is_some() { PREWARM_CYCLES } else { 0 };
    // Slice budgets only bound snapshot staleness; they never change what
    // is simulated (run_cycles distributes over any partition of a span,
    // and step_watched strides independently of its budget).
    let step_budget = if ckpt.is_some() { CKPT_SLICE } else { u64::MAX };
    let mut last_ckpt = chip.cycle();

    let save_snapshot = |chip: &cs_uarch::Chip, phase: &Phase, path: &std::path::Path| {
        let mut e = Enc::new();
        phase.encode_snap(&mut e);
        chip.encode_snap(&mut e);
        // Best-effort: a failed save costs re-simulation on resume, never
        // correctness — a fresh run produces the same bytes.
        if let Err(err) = crate::checkpoint::save_envelope(path, key, &e.buf) {
            eprintln!("checkpoint: failed to save {}: {err}", path.display());
        }
    };
    // Called between simulation slices: honours stop requests (signal flag
    // or the deterministic test trigger) by saving and bailing out, and
    // takes a cadence snapshot when one is due.
    let boundary =
        |chip: &cs_uarch::Chip, phase: &Phase, last_ckpt: &mut u64| -> Result<(), HarnessError> {
            let (Some(ctl), Some(path)) = (ckpt.as_ref(), ckpt_path.as_deref()) else {
                return Ok(());
            };
            let now = chip.cycle();
            let stop_requested = ctl.stop.load(std::sync::atomic::Ordering::SeqCst)
                || ctl.interrupt_after.is_some_and(|k| now >= k);
            if stop_requested {
                save_snapshot(chip, phase, path);
                return Err(HarnessError::Interrupted);
            }
            if ctl.cadence_cycles > 0 && now >= last_ckpt.saturating_add(ctl.cadence_cycles) {
                save_snapshot(chip, phase, path);
                *last_ckpt = now;
            }
            Ok(())
        };

    let meter_total = sampling::meter_total;
    let window_target = |k: usize| sampling::window_target(cfg, k);
    // Window-parallel saves reuse the same snapshot recipe; the path is
    // resolved once here so the executor never sees checkpoint plumbing.
    let save_wp = |chip: &cs_uarch::Chip, phase: &Phase| {
        if let Some(path) = ckpt_path.as_deref() {
            save_snapshot(chip, phase, path);
        }
    };
    // Wall-clock split of the sampled phases, published as telemetry at
    // the end of the run (never folded into simulated results).
    let mut timers = sampling::WindowTimers::default();

    // The phase loop: §3.1 pre-warm, warmup to steady state, statistics
    // reset, measurement — with a checkpoint opportunity between slices.
    // Sampled runs interleave functional fast-forward, detailed re-warm
    // and short detailed measurement windows instead of one long window.
    let (measure, warmup, requests_at_warmup, sampled) = loop {
        phase = match phase {
            Phase::PreWarm { cycles_done } => {
                if cycles_done >= prewarm_target {
                    meters = attach_workers(&mut chip);
                    Phase::Warmup {
                        window: chip.begin_watched(
                            &worker_cores,
                            cfg.warmup_instr,
                            cfg.max_cycles,
                            cfg.watchdog_grace,
                        ),
                    }
                } else {
                    let step = step_budget.min(prewarm_target - cycles_done);
                    chip.run_cycles(step);
                    let p = Phase::PreWarm { cycles_done: cycles_done + step };
                    boundary(&chip, &p, &mut last_ckpt)?;
                    p
                }
            }
            Phase::Warmup { mut window } => {
                let stepped =
                    chip.step_watched(&mut window, step_budget).map_err(|d| {
                        HarnessError::Stalled {
                            core: d.core,
                            cycles_without_commit: d.cycles_without_commit,
                            window: "warmup",
                        }
                    })?;
                match stepped {
                    Some(out) => {
                        chip.reset_stats();
                        let requests_at_warmup = meter_total(&meters);
                        if cfg.sample_windows > 0 && cfg.window_par {
                            // Window-parallel sampled run: the warming
                            // strand only ever fast-forwards; each window
                            // boundary forks a detailed excursion off a
                            // snapshot while warming streams ahead.
                            chip.set_fidelity(Fidelity::Functional);
                            Phase::WindowPar {
                                next_k: 0,
                                forward: Some(chip.begin_watched(
                                    &worker_cores,
                                    sampling::forward_span(cfg, 0),
                                    cfg.max_cycles,
                                    cfg.watchdog_grace,
                                )),
                                acc: Box::new(SampleAcc::new(out, requests_at_warmup)),
                                pending: Vec::new(),
                            }
                        } else if cfg.sample_windows > 0 {
                            // Sampled run: fast-forward functionally to the
                            // first deterministically spaced window.
                            chip.set_fidelity(Fidelity::Functional);
                            Phase::Sample {
                                k: 0,
                                sub: SampleSub::Forward {
                                    window: chip.begin_watched(
                                        &worker_cores,
                                        cfg.sample_period,
                                        cfg.max_cycles,
                                        cfg.watchdog_grace,
                                    ),
                                },
                                acc: Box::new(SampleAcc::new(out, requests_at_warmup)),
                            }
                        } else {
                            Phase::Measure {
                                window: chip.begin_watched(
                                    &worker_cores,
                                    cfg.measure_instr,
                                    cfg.max_cycles,
                                    cfg.watchdog_grace,
                                ),
                                warmup: out,
                                requests_at_warmup,
                            }
                        }
                    }
                    None => {
                        let p = Phase::Warmup { window };
                        boundary(&chip, &p, &mut last_ckpt)?;
                        p
                    }
                }
            }
            Phase::Measure { mut window, warmup, requests_at_warmup } => {
                let stepped =
                    chip.step_watched(&mut window, step_budget).map_err(|d| {
                        HarnessError::Stalled {
                            core: d.core,
                            cycles_without_commit: d.cycles_without_commit,
                            window: "measure",
                        }
                    })?;
                match stepped {
                    Some(out) => break (out, warmup, requests_at_warmup, None),
                    None => {
                        let p = Phase::Measure { window, warmup, requests_at_warmup };
                        boundary(&chip, &p, &mut last_ckpt)?;
                        p
                    }
                }
            }
            Phase::Sample { k, sub, mut acc } => match sub {
                SampleSub::Forward { mut window } => {
                    let slice_start = std::time::Instant::now();
                    let stepped =
                        chip.step_watched(&mut window, step_budget).map_err(|d| {
                            HarnessError::Stalled {
                                core: d.core,
                                cycles_without_commit: d.cycles_without_commit,
                                window: "sample-forward",
                            }
                        })?;
                    timers.forward_secs += slice_start.elapsed().as_secs_f64();
                    // Sampled sub-windows are often shorter than a slice
                    // budget, so the completed branches below must pass
                    // through `boundary` too — otherwise a fast schedule
                    // would never observe a stop request or take a
                    // cadence snapshot.
                    match stepped {
                        Some(out) => {
                            if !out.reached_target {
                                acc.forward_truncated = true;
                            }
                            chip.set_fidelity(Fidelity::Detailed);
                            let p = if cfg.sample_warmup_instr > 0 {
                                Phase::Sample {
                                    k,
                                    sub: SampleSub::Warm {
                                        window: chip.begin_watched(
                                            &worker_cores,
                                            cfg.sample_warmup_instr,
                                            cfg.max_cycles,
                                            cfg.watchdog_grace,
                                        ),
                                    },
                                    acc,
                                }
                            } else {
                                chip.reset_stats();
                                Phase::Sample {
                                    k,
                                    sub: SampleSub::Measure {
                                        window: chip.begin_watched(
                                            &worker_cores,
                                            window_target(k),
                                            cfg.max_cycles,
                                            cfg.watchdog_grace,
                                        ),
                                        requests_at_start: meter_total(&meters),
                                    },
                                    acc,
                                }
                            };
                            boundary(&chip, &p, &mut last_ckpt)?;
                            p
                        }
                        None => {
                            let p =
                                Phase::Sample { k, sub: SampleSub::Forward { window }, acc };
                            boundary(&chip, &p, &mut last_ckpt)?;
                            p
                        }
                    }
                }
                SampleSub::Warm { mut window } => {
                    let slice_start = std::time::Instant::now();
                    let stepped =
                        chip.step_watched(&mut window, step_budget).map_err(|d| {
                            HarnessError::Stalled {
                                core: d.core,
                                cycles_without_commit: d.cycles_without_commit,
                                window: "sample-warmup",
                            }
                        })?;
                    timers.warm_secs += slice_start.elapsed().as_secs_f64();
                    match stepped {
                        Some(out) => {
                            if !out.reached_target {
                                acc.forward_truncated = true;
                            }
                            chip.reset_stats();
                            let p = Phase::Sample {
                                k,
                                sub: SampleSub::Measure {
                                    window: chip.begin_watched(
                                        &worker_cores,
                                        window_target(k),
                                        cfg.max_cycles,
                                        cfg.watchdog_grace,
                                    ),
                                    requests_at_start: meter_total(&meters),
                                },
                                acc,
                            };
                            boundary(&chip, &p, &mut last_ckpt)?;
                            p
                        }
                        None => {
                            let p = Phase::Sample { k, sub: SampleSub::Warm { window }, acc };
                            boundary(&chip, &p, &mut last_ckpt)?;
                            p
                        }
                    }
                }
                SampleSub::Measure { mut window, requests_at_start } => {
                    let slice_start = std::time::Instant::now();
                    let stepped =
                        chip.step_watched(&mut window, step_budget).map_err(|d| {
                            HarnessError::Stalled {
                                core: d.core,
                                cycles_without_commit: d.cycles_without_commit,
                                window: "sample-measure",
                            }
                        })?;
                    timers.measure_secs += slice_start.elapsed().as_secs_f64();
                    match stepped {
                        Some(out) => {
                            if !out.reached_target {
                                acc.measure_truncated = true;
                            }
                            let window_requests =
                                meter_total(&meters) - requests_at_start;
                            acc.harvest(
                                &chip,
                                &worker_cores,
                                &polluter_cores,
                                &out,
                                window_requests,
                            );
                            if k + 1 == cfg.sample_windows {
                                // All windows done: the combined outcome
                                // spans the union of the measurement
                                // windows, and the status logic below sees
                                // any truncation anywhere in the schedule.
                                let combined = WindowOutcome {
                                    cycles: acc.samples.iter().map(|s| s.cycles).sum(),
                                    committed: acc
                                        .samples
                                        .iter()
                                        .map(|s| s.instructions)
                                        .sum(),
                                    reached_target: !acc.measure_truncated
                                        && !acc.forward_truncated,
                                };
                                let warmup = acc.warmup;
                                let requests_at_warmup = acc.requests_at_warmup;
                                break (combined, warmup, requests_at_warmup, Some(acc));
                            }
                            chip.set_fidelity(Fidelity::Functional);
                            let p = Phase::Sample {
                                k: k + 1,
                                sub: SampleSub::Forward {
                                    window: chip.begin_watched(
                                        &worker_cores,
                                        cfg.sample_period,
                                        cfg.max_cycles,
                                        cfg.watchdog_grace,
                                    ),
                                },
                                acc,
                            };
                            boundary(&chip, &p, &mut last_ckpt)?;
                            p
                        }
                        None => {
                            let p = Phase::Sample {
                                k,
                                sub: SampleSub::Measure { window, requests_at_start },
                                acc,
                            };
                            boundary(&chip, &p, &mut last_ckpt)?;
                            p
                        }
                    }
                }
            },
            Phase::WindowPar { next_k, forward, acc, pending } => {
                // The overlapped executor owns the whole remaining
                // schedule: warming strand, snapshot handoff, bounded
                // worker pool, in-order folding, checkpoint boundaries.
                let ctx = sampling::WindowParCtx {
                    cfg,
                    worker_cores: &worker_cores,
                    polluter_cores: &polluter_cores,
                    build_worker: &build_worker,
                    save: &save_wp,
                    ckpt: ckpt.as_ref(),
                    step_budget,
                };
                let acc = sampling::run_window_par(
                    &mut chip, next_k, forward, acc, pending, ctx, &mut last_ckpt, &mut timers,
                )?;
                // Same combined outcome the sequential sampler breaks with:
                // the union of the measurement windows, truncation anywhere
                // in the schedule folded in.
                let combined = WindowOutcome {
                    cycles: acc.samples.iter().map(|s| s.cycles).sum(),
                    committed: acc.samples.iter().map(|s| s.instructions).sum(),
                    reached_target: !acc.measure_truncated && !acc.forward_truncated,
                };
                let warmup = acc.warmup;
                let requests_at_warmup = acc.requests_at_warmup;
                break (combined, warmup, requests_at_warmup, Some(acc));
            }
        };
    };

    let cycles = measure.cycles;
    let requests = if meters.is_empty() {
        None
    } else if let Some(acc) = &sampled {
        // Sampled runs meter requests per measurement window so throughput
        // covers exactly the cycles the IPC covers.
        Some(acc.samples.iter().map(|s| s.requests).sum())
    } else {
        Some(meter_total(&meters) - requests_at_warmup)
    };

    // Truncation is surfaced, never silent: the measurement window takes
    // precedence over warmup when both fell short. In sampled mode the
    // combined measurement outcome already folds in any truncated
    // fast-forward, re-warm or measurement span.
    let status = if !measure.reached_target {
        RunStatus::Truncated { committed: measure.committed, target: cfg.measure_instr }
    } else if !warmup.reached_target {
        RunStatus::Truncated { committed: warmup.committed, target: cfg.warmup_instr }
    } else {
        RunStatus::Completed
    };

    let mut result = match sampled {
        Some(acc) => RunResult {
            name: unit_name.clone(),
            cycles,
            cores: acc.cores,
            mem: acc.mem,
            polluter_mem: acc.polluter_mem,
            dram: acc.dram,
            peak_bytes_per_cycle: machine.mem.dram.peak_bytes_per_cycle(),
            n_workers: worker_cores.len(),
            requests,
            status,
            // Window-parallel excursions simulate cycles off the warming
            // strand; the extras keep the totals a true partition of
            // everything simulated (zero for the sequential sampler).
            cycles_total: chip.cycle() + acc.extra_cycles,
            cycles_skipped: chip.skipped_cycles() + acc.extra_skipped,
            samples: acc.samples,
            tenants: Vec::new(),
        },
        None => {
            let mem_stats = chip.mem().stats();
            RunResult {
                name: unit_name,
                cycles,
                cores: worker_cores
                    .iter()
                    .map(|&c| chip.cores()[c].stats().clone())
                    .collect(),
                mem: worker_cores.iter().map(|&c| mem_stats.per_core[c].clone()).collect(),
                polluter_mem: polluter_cores
                    .iter()
                    .map(|&c| mem_stats.per_core[c].clone())
                    .collect(),
                dram: chip.mem().dram_stats(),
                peak_bytes_per_cycle: machine.mem.dram.peak_bytes_per_cycle(),
                n_workers: worker_cores.len(),
                requests,
                status,
                cycles_total: chip.cycle(),
                cycles_skipped: chip.skipped_cycles(),
                samples: Vec::new(),
                tenants: Vec::new(),
            }
        }
    };
    result.tenants = benches
        .iter()
        .enumerate()
        .map(|(t, b)| {
            let chunk = t * per_tenant..(t + 1) * per_tenant;
            #[allow(clippy::cast_possible_truncation)]
            let llc_lines = chip.mem().llc_tenant_lines(t as u8);
            TenantUsage {
                name: b.name().to_owned(),
                cores: worker_cores[chunk.clone()].to_vec(),
                instructions: result.cores[chunk.clone()]
                    .iter()
                    .map(CoreStats::instructions)
                    .sum(),
                llc_lines,
                dram_bytes: result.mem[chunk]
                    .iter()
                    .map(|m| m.dram_bytes[0] + m.dram_bytes[1])
                    .sum(),
            }
        })
        .collect();
    if paranoid_enabled() {
        audit(&result)?;
        // With the budget split over windows whose targets sum to exactly
        // `measure_instr`, a completed sampled run must have measured at
        // least that many instructions (commit-width overshoot only adds).
        if !result.samples.is_empty() && result.status.is_complete() {
            let summed: u64 = result.samples.iter().map(|s| s.instructions).sum();
            if summed < cfg.measure_instr {
                return Err(AuditError::WindowInstructionSum {
                    summed,
                    total: cfg.measure_instr,
                }
                .into());
            }
        }
    }
    if cfg.sample_windows > 0 {
        sampling::record_telemetry(sampling::PhaseTelemetry {
            unit: result.name.clone(),
            windows: result.samples.len(),
            forward_secs: timers.forward_secs,
            warm_secs: timers.warm_secs,
            measure_secs: timers.measure_secs,
            fold_wait_secs: timers.fold_wait_secs,
        });
    }
    Ok(result)
}

/// Like [`run`], but treats a truncated window as a hard failure: a result
/// whose status is [`RunStatus::Truncated`] becomes
/// [`HarnessError::Truncated`]. Figure campaigns use this so a silently
/// short window can never contaminate published numbers — the campaign
/// layer retries with a widened `max_cycles` instead.
pub fn run_strict(bench: &Benchmark, cfg: &RunConfig) -> Result<RunResult, HarnessError> {
    run_colocated_strict(std::slice::from_ref(bench), cfg)
}

/// Like [`run_colocated`], but treats a truncated window as a hard failure,
/// exactly as [`run_strict`] does for solo runs.
pub fn run_colocated_strict(
    benches: &[Benchmark],
    cfg: &RunConfig,
) -> Result<RunResult, HarnessError> {
    let result = run_colocated(benches, cfg)?;
    if let RunStatus::Truncated { committed, target } = result.status {
        return Err(HarnessError::Truncated { committed, target });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            warmup_instr: 60_000,
            measure_instr: 120_000,
            max_cycles: 8_000_000,
            ..RunConfig::default()
        }
    }

    #[test]
    fn worker_placement_default_and_split() {
        let mut cfg = RunConfig::default();
        assert_eq!(cfg.worker_cores(6), vec![0, 1, 2, 3]);
        cfg.split_sockets = true;
        assert_eq!(cfg.worker_cores(6), vec![0, 6, 1, 7]);
    }

    #[test]
    fn polluters_avoid_workers() {
        let cfg = RunConfig { polluter_bytes: Some(4 << 20), ..RunConfig::default() };
        assert_eq!(cfg.polluter_cores(6), vec![4, 5]);
        assert!(RunConfig::default().polluter_cores(6).is_empty());
    }

    #[test]
    fn run_produces_consistent_metrics() {
        let bench = Benchmark::mcf();
        let r = run(&bench, &tiny()).expect("valid config must run");
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.cores.len(), 4);
        assert!(r.instructions() >= 120_000);
        assert!(r.ipc() > 0.0 && r.ipc() <= 4.0);
        let b = r.breakdown();
        let total = b.committing_app + b.committing_os + b.stalled_app + b.stalled_os;
        assert!((total - 1.0).abs() < 1e-6, "breakdown must partition time, got {total}");
        assert!(b.memory <= 1.0 + 1e-9);
    }

    #[test]
    fn smt_attaches_two_threads_per_core() {
        let bench = Benchmark::mcf();
        let r = run(&bench, &RunConfig { smt: true, ..tiny() }).expect("valid config must run");
        for c in &r.cores {
            assert_eq!(c.per_thread_committed.len(), 2);
            assert!(c.per_thread_committed.iter().all(|&n| n > 0));
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn polluters_hit_the_llc() {
        // A scale-out workload exerts moderate eviction pressure; the
        // pre-warmed polluters must keep their arrays LLC-resident.
        let bench = Benchmark::web_search();
        let cfg = RunConfig {
            polluter_bytes: Some(4 << 20),
            warmup_instr: 1_500_000,
            measure_instr: 1_500_000,
            ..RunConfig::default()
        };
        let r = run(&bench, &cfg).expect("valid config must run");
        assert!(
            r.polluter_llc_hit_ratio() > 0.8,
            "polluter LLC hit ratio {} too low",
            r.polluter_llc_hit_ratio()
        );
    }

    #[test]
    fn validate_rejects_zero_workers() {
        let cfg = RunConfig { workers: 0, ..RunConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::NoWorkers));
        let err = run(&Benchmark::mcf(), &cfg).expect_err("must be rejected");
        assert_eq!(err, HarnessError::Config(ConfigError::NoWorkers));
    }

    #[test]
    fn validate_rejects_offchip_placement() {
        let cfg = RunConfig { workers: 20, ..RunConfig::default() };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::PlacementExceedsCores { core: 12, available: 12 })
        ));
    }

    #[test]
    fn validate_rejects_split_socket_polluter_overlap() {
        // Ten split-socket workers put five workers on socket 0 (cores
        // 0..=4); the polluter pair clamps onto cores 4 and 5 — overlap.
        let cfg = RunConfig {
            workers: 10,
            split_sockets: true,
            polluter_bytes: Some(4 << 20),
            ..RunConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::PlacementOverlap { core: 4 }));
    }

    #[test]
    fn validate_rejects_zero_dram_channels() {
        let cfg = RunConfig { dram_channels: Some(0), ..RunConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroDramChannels));
    }

    #[test]
    fn validate_rejects_misfit_cache_sizes() {
        let cfg = RunConfig { llc_bytes: Some(100), ..RunConfig::default() };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::InvalidCacheSize { which: "llc_bytes", bytes: 100 })
        );
        // Non-power-of-two capacities that fit the geometry are fine: the
        // Table 1 LLC itself is 12 MB.
        let ok = RunConfig { llc_bytes: Some(24 << 20), ..RunConfig::default() };
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_windows() {
        let cfg = RunConfig { measure_instr: 0, ..RunConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroWindow { which: "measure_instr" }));
        let cfg = RunConfig { max_cycles: 0, ..RunConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroWindow { which: "max_cycles" }));
    }

    #[test]
    fn tiny_cycle_cap_reports_truncation() {
        let bench = Benchmark::mcf();
        let cfg = RunConfig { max_cycles: 4_000, watchdog_grace: 0, ..tiny() };
        let r = run(&bench, &cfg).expect("truncation is a status, not an error");
        match r.status {
            RunStatus::Truncated { committed, target } => {
                assert_eq!(target, cfg.measure_instr);
                assert!(committed < target, "{committed} should fall short of {target}");
            }
            RunStatus::Completed => panic!("a 4k-cycle window cannot commit 120k instructions"),
        }
        assert!(!r.status.is_complete());
        let strict = run_strict(&bench, &cfg).expect_err("run_strict must reject truncation");
        assert!(matches!(strict, HarnessError::Truncated { .. }));
    }

    #[test]
    fn audit_passes_on_a_real_run_and_catches_corruption() {
        let bench = Benchmark::mcf();
        let r = run(&bench, &tiny()).expect("valid config must run");
        audit(&r).expect("a real run must satisfy every conservation law");
        let mut bad = r.clone();
        bad.cycles_skipped = bad.cycles_total + 1;
        assert!(matches!(audit(&bad), Err(AuditError::SkipExceedsTotal { .. })));
        let mut bad = r.clone();
        bad.cores[0].committing_cycles[0] += 1;
        assert!(matches!(audit(&bad), Err(AuditError::CycleBreakdown { core: 0, .. })));
        let mut bad = r;
        bad.mem[0].l1d.hits[0] = bad.mem[0].l1d.accesses[0] + 1;
        assert!(matches!(audit(&bad), Err(AuditError::HitsExceedAccesses { .. })));
    }

    #[test]
    fn repeated_interrupt_and_resume_is_byte_identical() {
        use crate::checkpoint::{with_checkpointing, CheckpointCtl};
        let bench = Benchmark::mcf();
        // Polluters included so the PreWarm phase (workers not yet
        // attached) is exercised by the first interrupt.
        let cfg = RunConfig { polluter_bytes: Some(2 << 20), ..tiny() };
        let baseline = run(&bench, &cfg).expect("uninterrupted run");
        let dir = std::env::temp_dir()
            .join(format!("cs-harness-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Kill the run at increasing cycle counts, resuming each time from
        // the snapshot the previous interrupt saved.
        let mut interrupts = 0;
        let mut k = 200_000u64;
        let result = loop {
            let mut ctl = CheckpointCtl::new(dir.clone(), "unit-test");
            ctl.cadence_cycles = 150_000;
            ctl.interrupt_after = Some(k);
            match with_checkpointing(ctl, || run(&bench, &cfg)) {
                Err(HarnessError::Interrupted) => {
                    interrupts += 1;
                    k += 700_000;
                }
                Ok(r) => break r,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
            assert!(interrupts < 64, "run never completed");
        };
        assert!(interrupts >= 2, "test must interrupt at least twice, got {interrupts}");
        assert_eq!(
            format!("{baseline:?}"),
            format!("{result:?}"),
            "an interrupted-and-resumed run must reproduce the baseline exactly"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_a_fresh_byte_identical_run() {
        use crate::checkpoint::{unit_file, unit_key, with_checkpointing, CheckpointCtl};
        let bench = Benchmark::mcf();
        let cfg = tiny();
        let baseline = run(&bench, &cfg).expect("uninterrupted run");
        let dir = std::env::temp_dir()
            .join(format!("cs-harness-ckpt-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        // Plant garbage where the checkpoint would live.
        let key = unit_key("unit-test", bench.name(), &cfg);
        std::fs::write(dir.join(unit_file(key)), b"not a checkpoint").expect("write");
        let ctl = CheckpointCtl::new(dir.clone(), "unit-test");
        let r = with_checkpointing(ctl, || run(&bench, &cfg)).expect("must degrade to fresh");
        assert_eq!(format!("{baseline:?}"), format!("{r:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sampled_tiny() -> RunConfig {
        RunConfig {
            sample_windows: 4,
            sample_period: 120_000,
            sample_warmup_instr: 20_000,
            ..tiny()
        }
    }

    #[test]
    fn sampled_run_completes_and_audits() {
        let bench = Benchmark::mcf();
        let r = run(&bench, &sampled_tiny()).expect("valid config must run");
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.samples.len(), 4);
        let summed: u64 = r.samples.iter().map(|s| s.instructions).sum();
        assert_eq!(summed, r.instructions(), "window sums must match merged stats");
        assert!(summed >= 120_000, "windows must cover the measurement budget");
        assert!(r.ipc() > 0.0 && r.ipc() <= 4.0);
        for s in &r.samples {
            assert!(s.ipc(r.n_workers) > 0.0);
        }
        // The merged breakdown must still partition the union of windows.
        let b = r.breakdown();
        let total = b.committing_app + b.committing_os + b.stalled_app + b.stalled_os;
        assert!((total - 1.0).abs() < 1e-6, "breakdown must partition time, got {total}");
        audit(&r).expect("a sampled run must satisfy every conservation law");
        // And the auditor must catch per-window corruption.
        let mut bad = r.clone();
        bad.samples[0].committing[0] += 1;
        assert!(matches!(audit(&bad), Err(AuditError::WindowBreakdown { window: 0, .. })));
        let mut bad = r;
        bad.samples[1].instructions += 1;
        assert!(matches!(audit(&bad), Err(AuditError::WindowInstructionSum { .. })));
    }

    #[test]
    fn sampled_zero_detailed_warmup_still_completes() {
        let bench = Benchmark::mcf();
        let cfg = RunConfig { sample_warmup_instr: 0, ..sampled_tiny() };
        let r = run(&bench, &cfg).expect("valid config must run");
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.samples.len(), 4);
        audit(&r).expect("audit");
    }

    #[test]
    fn sampled_validation_rejects_degenerate_schedules() {
        let cfg = RunConfig { sample_windows: 3, ..RunConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroWindow { which: "sample_period" }));
        let cfg = RunConfig {
            sample_windows: 10,
            sample_period: 1_000,
            measure_instr: 5,
            ..RunConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::SampleWindowsExceedMeasure { windows: 10, measure_instr: 5 })
        );
    }

    #[test]
    fn sampled_interrupt_and_resume_is_byte_identical() {
        use crate::checkpoint::{with_checkpointing, CheckpointCtl};
        let bench = Benchmark::mcf();
        let cfg = sampled_tiny();
        let baseline = run(&bench, &cfg).expect("uninterrupted run");
        let dir = std::env::temp_dir()
            .join(format!("cs-harness-sampled-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Kill at increasing cycle counts so interrupts land inside
        // functional fast-forward, re-warm and measurement sub-phases.
        let mut interrupts = 0;
        let mut k = 150_000u64;
        let result = loop {
            let mut ctl = CheckpointCtl::new(dir.clone(), "unit-test");
            ctl.cadence_cycles = 100_000;
            ctl.interrupt_after = Some(k);
            match with_checkpointing(ctl, || run(&bench, &cfg)) {
                Err(HarnessError::Interrupted) => {
                    interrupts += 1;
                    k += 250_000;
                }
                Ok(r) => break r,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
            assert!(interrupts < 64, "run never completed");
        };
        assert!(interrupts >= 2, "test must interrupt at least twice, got {interrupts}");
        assert_eq!(
            format!("{baseline:?}"),
            format!("{result:?}"),
            "an interrupted-and-resumed sampled run must reproduce the baseline exactly"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn window_par_tiny() -> RunConfig {
        RunConfig { window_par: true, ..sampled_tiny() }
    }

    #[test]
    fn window_par_run_completes_and_audits() {
        let bench = Benchmark::mcf();
        let r = run(&bench, &window_par_tiny()).expect("valid config must run");
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.samples.len(), 4);
        let summed: u64 = r.samples.iter().map(|s| s.instructions).sum();
        assert_eq!(summed, r.instructions(), "window sums must match merged stats");
        assert!(summed >= 120_000, "windows must cover the measurement budget");
        assert!(r.ipc() > 0.0 && r.ipc() <= 4.0);
        audit(&r).expect("a window-parallel run must satisfy every conservation law");
        // The worker excursions happen off the warming strand; the extras
        // must keep the cycle totals a partition.
        assert!(r.cycles_total >= r.cycles, "totals must cover the measured windows");
        assert!(r.cycles_skipped <= r.cycles_total);
    }

    #[test]
    fn window_par_is_byte_identical_across_jobs_and_inflight() {
        let bench = Benchmark::mcf();
        let base = run(&bench, &window_par_tiny()).expect("jobs=1 run");
        for cfg in [
            RunConfig { jobs: 2, ..window_par_tiny() },
            RunConfig { jobs: 4, ..window_par_tiny() },
            RunConfig { jobs: 4, sample_inflight: 1, ..window_par_tiny() },
            RunConfig { jobs: 4, sample_inflight: 2, ..window_par_tiny() },
        ] {
            let r = run(&bench, &cfg).expect("parallel run");
            assert_eq!(
                format!("{base:?}"),
                format!("{r:?}"),
                "window-parallel results must not depend on jobs={} inflight={}",
                cfg.jobs,
                cfg.sample_inflight
            );
        }
    }

    #[test]
    fn window_par_interrupt_and_resume_is_byte_identical() {
        use crate::checkpoint::{with_checkpointing, CheckpointCtl};
        let bench = Benchmark::mcf();
        let cfg = RunConfig { jobs: 2, ..window_par_tiny() };
        let baseline = run(&bench, &cfg).expect("uninterrupted run");
        let dir = std::env::temp_dir()
            .join(format!("cs-harness-windowpar-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Kill at increasing warming-strand cycle counts; with windows
        // dispatched ahead of the fold cursor, interrupts land while ≥1
        // window is in flight and those windows are re-run on resume.
        // The warming strand stays functional throughout, so its cycle
        // count is far below the sequential sampled run's — the ladder
        // steps are correspondingly tighter.
        let mut interrupts = 0;
        let mut k = 60_000u64;
        let result = loop {
            let mut ctl = CheckpointCtl::new(dir.clone(), "unit-test");
            ctl.cadence_cycles = 50_000;
            ctl.interrupt_after = Some(k);
            match with_checkpointing(ctl, || run(&bench, &cfg)) {
                Err(HarnessError::Interrupted) => {
                    interrupts += 1;
                    k += 80_000;
                }
                Ok(r) => break r,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
            assert!(interrupts < 64, "run never completed");
        };
        assert!(interrupts >= 2, "test must interrupt at least twice, got {interrupts}");
        assert_eq!(
            format!("{baseline:?}"),
            format!("{result:?}"),
            "a killed-and-resumed window-parallel run must reproduce the baseline"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_par_resume_crosses_jobs_values() {
        use crate::checkpoint::{with_checkpointing, CheckpointCtl};
        let bench = Benchmark::mcf();
        let par = RunConfig { jobs: 4, ..window_par_tiny() };
        let baseline = run(&bench, &par).expect("uninterrupted run");
        let dir = std::env::temp_dir()
            .join(format!("cs-harness-windowpar-xjobs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Interrupt a jobs=4 run mid-schedule, then finish it at jobs=1:
        // pending windows are re-dispatched inline and the bytes must
        // still match (jobs is not part of the checkpoint key).
        let mut ctl = CheckpointCtl::new(dir.clone(), "unit-test");
        ctl.cadence_cycles = 50_000;
        ctl.interrupt_after = Some(150_000);
        match with_checkpointing(ctl, || run(&bench, &par)) {
            Err(HarnessError::Interrupted) => {}
            other => panic!("expected an interrupt, got {other:?}"),
        }
        let seq = RunConfig { jobs: 1, ..window_par_tiny() };
        let ctl = CheckpointCtl::new(dir.clone(), "unit-test");
        let result =
            with_checkpointing(ctl, || run(&bench, &seq)).expect("resumed run completes");
        assert_eq!(
            format!("{baseline:?}"),
            format!("{result:?}"),
            "a jobs=4 checkpoint resumed at jobs=1 must reproduce the jobs=4 bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_zero_sample_inflight() {
        let cfg = RunConfig { sample_inflight: 0, ..RunConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroWindow { which: "sample_inflight" }));
    }

    #[test]
    fn window_par_without_sampling_is_inert() {
        // A blanket CS_WINDOW_PAR=1 must not perturb non-sampled runs.
        let bench = Benchmark::mcf();
        let plain = run(&bench, &tiny()).expect("plain run");
        let wp = run(&bench, &RunConfig { window_par: true, ..tiny() }).expect("wp run");
        assert_eq!(format!("{plain:?}"), format!("{wp:?}"));
    }

    #[test]
    fn validate_rejects_degenerate_qos() {
        let cfg = RunConfig { llc_way_masks: Some(vec![0]), ..RunConfig::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::InvalidWayMask { tenant: 0, .. })));
        let cfg = RunConfig { llc_way_masks: Some(vec![1 << 16]), ..RunConfig::default() };
        assert!(matches!(cfg.validate(), Err(ConfigError::InvalidWayMask { .. })));
        let cfg = RunConfig { dram_budgets: Some(vec![63]), ..RunConfig::default() };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BudgetBelowLineSize { tenant: 0, bytes: 63 })
        ));
        let cfg = RunConfig {
            dram_budgets: Some(vec![4096]),
            dram_budget_window: 0,
            ..RunConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroWindow { which: "dram_budget_window" }));
    }

    #[test]
    fn solo_run_is_a_one_tenant_colocation() {
        let bench = Benchmark::mcf();
        let a = run(&bench, &tiny()).expect("solo run");
        assert_eq!(a.tenants.len(), 1);
        assert_eq!(a.tenants[0].cores, vec![0, 1, 2, 3]);
        assert_eq!(a.tenants[0].instructions, a.instructions());
        assert!((a.tenant_ipc(0) - a.ipc()).abs() < 1e-12);
        assert_eq!(a.tenant_llc_share_pct(0), 100.0);
    }

    #[test]
    fn colocated_pair_reports_per_tenant_usage() {
        let benches = [Benchmark::mcf(), Benchmark::web_search()];
        let cfg = RunConfig { workers: 2, ..tiny() };
        let r = run_colocated(&benches, &cfg).expect("valid config must run");
        assert_eq!(r.name, "SPECint (mcf)+Web Search");
        assert_eq!(r.cores.len(), 4, "two tenants x two workers");
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].cores, vec![0, 1]);
        assert_eq!(r.tenants[1].cores, vec![2, 3]);
        for t in 0..2 {
            assert!(r.tenants[t].instructions > 0);
            assert!(r.tenants[t].llc_lines > 0, "tenant {t} owns no LLC lines");
            assert!(r.tenant_ipc(t) > 0.0);
        }
        let per_tenant: u64 = r.tenants.iter().map(|u| u.instructions).sum();
        assert_eq!(per_tenant, r.instructions(), "tenant chunks must partition the workers");
        audit(&r).expect("a co-located run must satisfy every conservation law");
    }

    #[test]
    fn colocated_interrupt_and_resume_with_qos_is_byte_identical() {
        use crate::checkpoint::{with_checkpointing, CheckpointCtl};
        let benches = [Benchmark::mcf(), Benchmark::data_serving()];
        // Both mitigations on, so the regulator cursors and per-line tenant
        // tags must survive the snapshot round-trip.
        let cfg = RunConfig {
            workers: 2,
            llc_way_masks: Some(vec![0x00FF, 0xFF00]),
            dram_budgets: Some(vec![64 * 1024, 64 * 1024]),
            ..tiny()
        };
        let baseline = run_colocated(&benches, &cfg).expect("uninterrupted run");
        let dir = std::env::temp_dir()
            .join(format!("cs-harness-coloc-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut interrupts = 0;
        let mut k = 150_000u64;
        let result = loop {
            let mut ctl = CheckpointCtl::new(dir.clone(), "unit-test");
            ctl.cadence_cycles = 100_000;
            ctl.interrupt_after = Some(k);
            match with_checkpointing(ctl, || run_colocated(&benches, &cfg)) {
                Err(HarnessError::Interrupted) => {
                    interrupts += 1;
                    k += 400_000;
                }
                Ok(r) => break r,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
            assert!(interrupts < 64, "run never completed");
        };
        assert!(interrupts >= 1, "test must interrupt at least once");
        assert_eq!(
            format!("{baseline:?}"),
            format!("{result:?}"),
            "an interrupted-and-resumed co-located run must reproduce the baseline exactly"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stalled_dram_trips_the_watchdog() {
        let bench = Benchmark::mcf();
        let cfg = RunConfig {
            fault: Some(FaultPlan::stall(7)),
            watchdog_grace: 20_000,
            ..tiny()
        };
        let err = run(&bench, &cfg).expect_err("an all-stall fault plan must not complete");
        match err {
            HarnessError::Stalled { cycles_without_commit, window, .. } => {
                assert!(cycles_without_commit >= 20_000);
                assert_eq!(window, "warmup");
            }
            other => panic!("expected a stall diagnosis, got {other:?}"),
        }
    }
}
