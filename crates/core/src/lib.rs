//! CloudSuite-RS — a reproduction of *Clearing the Clouds: A Study of
//! Emerging Scale-out Workloads on Modern Hardware* (Ferdman et al.,
//! ASPLOS 2012).
//!
//! This crate is the top of the stack: it assembles the substrates
//! (`cs-trace`, `cs-memsys`, `cs-uarch`, `cs-workloads`) into the paper's
//! experimental apparatus and exposes one module per figure/table of the
//! evaluation:
//!
//! - [`machine`] — the Table 1 machine description (Xeon X5670-like) and
//!   its assembly into a simulated chip;
//! - [`registry`] — the benchmark registry: the six CloudSuite scale-out
//!   workloads plus the traditional comparison points of §3.3;
//! - [`harness`] — the measurement methodology of §3.1: warmup and
//!   steady-state windows, worker placement (including the cross-socket
//!   placement used for the sharing study and the cache-polluter threads
//!   used for the LLC study), and the derived metrics;
//! - [`experiments`] — one entry point per table and figure (Table 1,
//!   Figures 1–7) plus the ablations suggested by the paper's
//!   "Implications" paragraphs and the `fleet_slo` cluster-serving study
//!   (harness-measured service times driving the `cs-fleet` fault-tolerant
//!   fleet simulator);
//! - [`errors`] — the typed error surface: configuration validation
//!   ([`errors::ConfigError`]), stall/truncation diagnoses
//!   ([`errors::HarnessError`]), and registry capability errors;
//! - [`config`] — the declarative knob registry behind the campaign
//!   binaries: every `--flag`/`CS_*` pair is declared once and parsing,
//!   precedence, and `--help` are derived from the registry;
//! - [`par`] — the deterministic worker pool ([`par::par_map`]) that the
//!   sweep experiments and the campaign layer fan independent, seeded
//!   runs over ([`harness::RunConfig::jobs`] sets the width);
//! - [`sampling`] — the SMARTS sampling machine shared by the harness:
//!   window phases and their checkpoint codecs, and the overlapped
//!   window-parallel executor that forks detailed measurement windows off
//!   chip snapshots while functional warming streams ahead
//!   ([`harness::RunConfig::window_par`]);
//! - [`checkpoint`] — crash-safe mid-run snapshots: a versioned,
//!   checksummed envelope written atomically on a cycle cadence and on
//!   stop requests, so a killed campaign resumes from its last snapshot
//!   with byte-identical results.
//!
//! # Quickstart
//!
//! ```no_run
//! use cloudsuite::harness::{run, RunConfig};
//! use cloudsuite::registry::Benchmark;
//!
//! let bench = Benchmark::data_serving();
//! let result = run(&bench, &RunConfig::default()).expect("default config is valid");
//! println!("{}: IPC {:.2}, MLP {:.2}", result.name, result.app_ipc(), result.mlp());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::perf)]

pub mod checkpoint;
pub mod config;
pub mod errors;
pub mod experiments;
pub mod harness;
pub mod machine;
pub mod par;
pub mod registry;
pub mod sampling;

pub use errors::{AuditError, ConfigError, HarnessError};
pub use harness::{run, run_strict, RunConfig, RunResult, RunStatus};
pub use machine::MachineConfig;
pub use registry::{Benchmark, Category, RegistryError};

// Re-exported so harness users can describe fault plans without naming
// cs-memsys directly.
pub use cs_memsys::FaultPlan;
