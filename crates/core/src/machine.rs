//! The Table 1 machine description and its assembly.
//!
//! The paper's testbed is a PowerEdge M1000e blade with two six-core Intel
//! Xeon X5670 processors (§3). [`MachineConfig`] captures the published
//! architectural parameters and builds the simulated [`Chip`].

use cs_memsys::{MemSysConfig, PrefetchConfig};
use cs_uarch::{Chip, CoreConfig};
use serde::{Deserialize, Serialize};

/// A whole-machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable name.
    pub name: String,
    /// Core clock in GHz (Table 1: 2.93). Only used to convert cycle
    /// counts to wall-clock figures in reports.
    pub freq_ghz: f64,
    /// Number of cores to instantiate.
    pub n_cores: usize,
    /// Core micro-architecture.
    pub core: CoreConfig,
    /// Memory system.
    pub mem: MemSysConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::x5670(6)
    }
}

impl MachineConfig {
    /// The paper's machine: two six-core Xeon X5670 sockets. `n_cores`
    /// cores are instantiated (up to 12); cores 0–5 belong to socket 0 and
    /// 6–11 to socket 1.
    pub fn x5670(n_cores: usize) -> Self {
        Self {
            name: "2x Intel Xeon X5670 (Westmere-EP)".to_owned(),
            freq_ghz: 2.93,
            n_cores,
            core: CoreConfig::x5670(),
            mem: MemSysConfig::default(),
        }
    }

    /// Enables SMT (two hardware threads per core).
    pub fn with_smt(mut self) -> Self {
        self.core.smt_threads = 2;
        self
    }

    /// Replaces the LLC capacity (Figure 4 style resizing; the polluter
    /// methodology in [`crate::harness`] is the paper-faithful alternative).
    pub fn with_llc_bytes(mut self, bytes: u64) -> Self {
        self.mem.llc = self.mem.llc.with_size(bytes);
        self
    }

    /// Replaces the prefetcher configuration (Figure 5 ablations).
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.mem.prefetch = prefetch;
        self
    }

    /// Replaces the core configuration (§4.2 ablations).
    pub fn with_core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Builds the simulated chip.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero cores, invalid core
    /// parameters).
    pub fn build(&self) -> Chip {
        assert!(self.n_cores >= 1, "machine needs at least one core");
        Chip::new(self.core, self.mem.clone(), self.n_cores)
    }

    /// The Table 1 parameter listing, as `(parameter, value)` rows.
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        let mem = &self.mem;
        let core = &self.core;
        vec![
            ("Processor".into(), self.name.clone()),
            ("Clock".into(), format!("{:.2} GHz", self.freq_ghz)),
            (
                "CMP width".into(),
                format!("{} OoO cores per socket", mem.cores_per_socket),
            ),
            ("Core width".into(), format!("{}-wide issue and retire", core.width)),
            ("Reorder buffer".into(), format!("{} entries", core.rob_entries)),
            (
                "Load/Store buffer".into(),
                format!("{}/{} entries", core.load_queue, core.store_queue),
            ),
            ("Reservation stations".into(), format!("{} entries", core.reservation_stations)),
            (
                "L1 cache".into(),
                format!(
                    "{} KB split I/D, {}-cycle access latency",
                    mem.l1i.size_bytes / 1024,
                    mem.l1i.latency
                ),
            ),
            (
                "L2 cache".into(),
                format!(
                    "{} KB per core, {}-cycle access latency",
                    mem.l2.size_bytes / 1024,
                    mem.l2.latency - mem.l1d.latency
                ),
            ),
            (
                "LLC (L3 cache)".into(),
                format!(
                    "{} MB, {}-cycle access latency",
                    mem.llc.size_bytes >> 20,
                    mem.llc.latency - mem.l2.latency
                ),
            ),
            (
                "Memory".into(),
                format!(
                    "{} DDR3 channels, up to {:.0} GB/s",
                    mem.dram.channels,
                    mem.dram.peak_bytes_per_cycle() * self.freq_ghz
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let m = MachineConfig::default();
        assert_eq!(m.core.width, 4);
        assert_eq!(m.core.rob_entries, 128);
        assert_eq!(m.mem.llc.size_bytes, 12 << 20);
        assert_eq!(m.mem.dram.channels, 3);
        assert!((m.freq_ghz - 2.93).abs() < 1e-9);
    }

    #[test]
    fn builders_compose() {
        let m = MachineConfig::x5670(4)
            .with_smt()
            .with_llc_bytes(6 << 20)
            .with_prefetch(PrefetchConfig::none());
        assert_eq!(m.core.smt_threads, 2);
        assert_eq!(m.mem.llc.size_bytes, 6 << 20);
        assert!(!m.mem.prefetch.adjacent_line);
        let chip = m.build();
        assert_eq!(chip.cores().len(), 4);
    }

    #[test]
    fn table1_rows_render_key_parameters() {
        let rows = MachineConfig::default().table1_rows();
        let text: String =
            rows.iter().map(|(k, v)| format!("{k}: {v}\n")).collect();
        assert!(text.contains("4-wide"));
        assert!(text.contains("128 entries"));
        assert!(text.contains("48/32 entries"));
        assert!(text.contains("12 MB"));
        assert!(text.contains("29-cycle"));
        assert!(text.contains("3 DDR3 channels"));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_machine_rejected() {
        let m = MachineConfig { n_cores: 0, ..MachineConfig::default() };
        let _ = m.build();
    }
}
