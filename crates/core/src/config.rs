//! Declarative knob registry for the campaign binaries.
//!
//! Historically every binary hand-rolled its own `--flag`/`CS_ENV` parsing
//! and the three copies drifted. This module replaces that with a single
//! registry: each knob declares its flag name, metavariable, environment
//! variable(s), help line, and setter **once** ([`Knob`]), and
//! [`RunConfigBuilder`] derives everything else — environment resolution,
//! argument parsing, the usage line, and `--help` output.
//!
//! Precedence is the historical contract, unchanged:
//!
//! 1. defaults ([`CampaignSettings::default`]),
//! 2. environment variables, in a knob's declared order (so an alias like
//!    `CS_WARMUP_INSTR` listed after `CS_WARMUP` outranks it). Unparsable
//!    environment values are silently ignored — the environment degrades
//!    to defaults, it never aborts a run;
//! 3. command-line flags, left to right. Flags are strict: a missing or
//!    invalid value is a usage error (exit 2), never ignored.

use crate::errors::ConfigError;
use crate::harness::RunConfig;
use std::path::PathBuf;

/// Knobs read outside the registry: `CS_PARANOID` is consulted at audit
/// sites ([`crate::harness::paranoid_enabled`]) and the `CS_FAULT_*`
/// family resolves as one unit in [`apply_fault_env`]. They are still
/// valid spellings for [`RunConfigBuilder::check_env_names`].
const EXTRA_KNOWN_ENVS: &[&str] = &[
    "CS_PARANOID",
    "CS_FAULT_DRAM_LAT",
    "CS_FAULT_DRAM_RATE",
    "CS_FAULT_PF_DROP",
    "CS_FAULT_SEED",
];

/// Everything a campaign binary needs from flags and environment: the
/// simulation [`RunConfig`] plus the campaign-level knobs that live
/// outside it.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSettings {
    /// The simulation configuration every experiment runs under.
    pub run: RunConfig,
    /// `--resume`: skip experiments whose result is already up to date.
    pub resume: bool,
    /// `--results-dir`: where result files and the manifest land.
    pub results_dir: PathBuf,
    /// `--ckpt-cycles`/`CS_CKPT_CYCLES`: checkpoint cadence override
    /// (`None` keeps the engine default).
    pub ckpt_cycles: Option<u64>,
    /// `CS_INTERRUPT_AFTER`: deterministic kill switch for tests and CI.
    pub interrupt_after: Option<u64>,
    /// `--max-retries`/`CS_MAX_RETRIES`: transient-failure retry cap
    /// override (`None` keeps the engine default).
    pub max_retries: Option<u32>,
    /// `--out`: output path override for single-file binaries.
    pub out: Option<PathBuf>,
    /// `--force`: overwrite baseline sections that were measured on a
    /// host with a different core count (`bench_campaign` refuses
    /// otherwise, so wall-clock history stays comparable).
    pub force: bool,
}

impl Default for CampaignSettings {
    fn default() -> Self {
        Self {
            run: RunConfig::default(),
            resume: false,
            results_dir: PathBuf::from("results"),
            ckpt_cycles: None,
            interrupt_after: None,
            max_retries: None,
            out: None,
            force: false,
        }
    }
}

/// How a [`RunConfigBuilder::parse`] call ended.
#[derive(Debug)]
pub enum ParseOutcome {
    /// Every argument was understood; run with these settings.
    Ready(Box<CampaignSettings>),
    /// `--help`/`-h` was given: print this text and exit 0.
    Help(String),
    /// A usage error: print and exit 2.
    Error {
        /// What was wrong, e.g. `--jobs requires a positive integer`.
        message: String,
        /// Whether the one-line usage string should follow the message
        /// (historically only unknown arguments print it).
        show_usage: bool,
    },
}

type Apply = Box<dyn Fn(&mut CampaignSettings, &str) -> bool>;

/// One knob, declared once: flag, environment variable(s), help, and the
/// setter. Everything the binaries print or parse derives from these.
pub struct Knob {
    flag: Option<&'static str>,
    metavar: Option<&'static str>,
    envs: &'static [&'static str],
    help: &'static str,
    invalid: &'static str,
    /// Strict setter used for flag values: `false` means invalid.
    apply: Apply,
    /// Lenient setter used for environment values; defaults to `apply`
    /// with failures ignored. Separate because a few knobs historically
    /// sanitize the environment instead of rejecting it (`CS_JOBS=0`
    /// clamps to 1 where `--jobs 0` errors).
    env_apply: Option<Apply>,
}

impl Knob {
    /// A boolean flag (no value), e.g. `--resume`.
    pub fn switch(
        flag: &'static str,
        envs: &'static [&'static str],
        help: &'static str,
        apply: impl Fn(&mut CampaignSettings, &str) -> bool + 'static,
    ) -> Self {
        Self { flag: Some(flag), metavar: None, envs, help, invalid: "", apply: Box::new(apply), env_apply: None }
    }

    /// A flag taking a value, e.g. `--jobs N`.
    pub fn valued(
        flag: &'static str,
        metavar: &'static str,
        envs: &'static [&'static str],
        invalid: &'static str,
        help: &'static str,
        apply: impl Fn(&mut CampaignSettings, &str) -> bool + 'static,
    ) -> Self {
        Self {
            flag: Some(flag),
            metavar: Some(metavar),
            envs,
            help,
            invalid,
            apply: Box::new(apply),
            env_apply: None,
        }
    }

    /// A knob with no flag form, e.g. `CS_SEED`.
    pub fn env_only(
        envs: &'static [&'static str],
        help: &'static str,
        apply: impl Fn(&mut CampaignSettings, &str) -> bool + 'static,
    ) -> Self {
        Self { flag: None, metavar: None, envs, help, invalid: "", apply: Box::new(apply), env_apply: None }
    }

    /// Overrides the environment-side setter (see [`Knob::env_apply`]).
    #[must_use]
    pub fn with_env_apply(
        mut self,
        env_apply: impl Fn(&mut CampaignSettings, &str) -> bool + 'static,
    ) -> Self {
        self.env_apply = Some(Box::new(env_apply));
        self
    }
}

/// The declarative registry: knobs in, parsing/help/env resolution out.
pub struct RunConfigBuilder {
    prog: &'static str,
    knobs: Vec<Knob>,
}

impl RunConfigBuilder {
    /// An empty registry for `prog` (the binary name in usage output).
    pub fn new(prog: &'static str) -> Self {
        Self { prog, knobs: Vec::new() }
    }

    /// Registers a knob.
    #[must_use]
    pub fn knob(mut self, k: Knob) -> Self {
        self.knobs.push(k);
        self
    }

    /// The standard campaign registry: every knob `all_figures` (and the
    /// single-figure binaries via [`RunConfigBuilder::settings_from_env`])
    /// understands, declared exactly once.
    pub fn campaign(prog: &'static str) -> Self {
        Self::new(prog)
            .knob(Knob::switch("--resume", &[], "skip experiments whose result is up to date", |s, _| {
                s.resume = true;
                true
            }))
            .knob(
                Knob::switch(
                    "--no-skip",
                    &["CS_NO_SKIP"],
                    "disable the event-driven cycle-skipping fast path",
                    |s, _| {
                        s.run.cycle_skip = false;
                        true
                    },
                )
                .with_env_apply(|s, v| {
                    // Historical env_u64 semantics: unparsable means unset.
                    if let Ok(n) = v.parse::<u64>() {
                        s.run.cycle_skip = n == 0;
                    }
                    true
                }),
            )
            .knob(Knob::valued(
                "--results-dir",
                "DIR",
                &[],
                "--results-dir requires a path",
                "directory for result files and the manifest",
                |s, v| {
                    s.results_dir = PathBuf::from(v);
                    true
                },
            ))
            .knob(
                Knob::valued(
                    "--jobs",
                    "N",
                    &["CS_JOBS"],
                    "--jobs requires a positive integer",
                    "worker threads for the campaign and sweep layers",
                    |s, v| match v.parse::<usize>() {
                        Ok(n) if n > 0 => {
                            s.run.jobs = n;
                            true
                        }
                        _ => false,
                    },
                )
                .with_env_apply(|s, v| {
                    if let Ok(n) = v.parse::<u64>() {
                        #[allow(clippy::cast_possible_truncation)]
                        {
                            s.run.jobs = (n as usize).max(1);
                        }
                    }
                    true
                }),
            )
            .knob(Knob::valued(
                "--ckpt-cycles",
                "N",
                &["CS_CKPT_CYCLES"],
                "--ckpt-cycles requires a cycle count (0 disables cadence)",
                "checkpoint cadence in simulated cycles",
                |s, v| {
                    v.parse::<u64>().map(|n| s.ckpt_cycles = Some(n)).is_ok()
                },
            ))
            .knob(Knob::valued(
                "--max-retries",
                "N",
                &["CS_MAX_RETRIES"],
                "--max-retries requires a retry count (0 disables retries)",
                "transient-failure retries per experiment",
                |s, v| v.parse::<u32>().map(|n| s.max_retries = Some(n)).is_ok(),
            ))
            .knob(Knob::valued(
                "--warmup-instr",
                "N",
                &["CS_WARMUP", "CS_WARMUP_INSTR"],
                "--warmup-instr requires an instruction count",
                "warmup window budget in instructions",
                |s, v| v.parse::<u64>().map(|n| s.run.warmup_instr = n).is_ok(),
            ))
            .knob(
                Knob::valued(
                    "--measure-instr",
                    "N",
                    &["CS_MEASURE", "CS_MEASURE_INSTR"],
                    "--measure-instr requires a positive instruction count",
                    "measured window budget in instructions",
                    |s, v| match v.parse::<u64>() {
                        Ok(n) if n > 0 => {
                            s.run.measure_instr = n;
                            true
                        }
                        _ => false,
                    },
                )
                .with_env_apply(|s, v| {
                    // The environment is lenient: a zero here is caught by
                    // `RunConfig::validate`, not by the parser.
                    if let Ok(n) = v.parse::<u64>() {
                        s.run.measure_instr = n;
                    }
                    true
                }),
            )
            .knob(Knob::valued(
                "--sample-windows",
                "K",
                &["CS_SAMPLE_WINDOWS"],
                "--sample-windows requires a window count (0 disables sampling)",
                "SMARTS-style sampling: detailed measurement windows",
                |s, v| v.parse::<usize>().map(|k| s.run.sample_windows = k).is_ok(),
            ))
            .knob(Knob::valued(
                "--sample-period",
                "N",
                &["CS_SAMPLE_PERIOD"],
                "--sample-period requires an instruction count",
                "functional fast-forward span between sample windows",
                |s, v| v.parse::<u64>().map(|n| s.run.sample_period = n).is_ok(),
            ))
            .knob(Knob::valued(
                "--sample-warmup",
                "N",
                &["CS_SAMPLE_WARMUP"],
                "--sample-warmup requires an instruction count",
                "detailed warm-up instructions before each sample window",
                |s, v| v.parse::<u64>().map(|n| s.run.sample_warmup_instr = n).is_ok(),
            ))
            .knob(
                Knob::switch(
                    "--window-par",
                    &["CS_WINDOW_PAR"],
                    "overlap sampled windows: fork detailed measurement off \
                     snapshots while functional warming streams ahead",
                    |s, _| {
                        s.run.window_par = true;
                        true
                    },
                )
                .with_env_apply(|s, v| {
                    // Same lenient 0/1 semantics as CS_NO_SKIP.
                    if let Ok(n) = v.parse::<u64>() {
                        s.run.window_par = n != 0;
                    }
                    true
                }),
            )
            .knob(Knob::valued(
                "--sample-inflight",
                "N",
                &["CS_SAMPLE_INFLIGHT"],
                "--sample-inflight requires a positive window count",
                "in-flight detailed-window budget under --window-par \
                 (scheduling-only: results are byte-identical at any value)",
                |s, v| match v.parse::<usize>() {
                    Ok(n) if n > 0 => {
                        s.run.sample_inflight = n;
                        true
                    }
                    _ => false,
                },
            ))
            .knob(Knob::valued(
                "--matrix-workloads",
                "LIST",
                &["CS_MATRIX_WORKLOADS"],
                "--matrix-workloads requires a comma-separated list of roster keys",
                "restrict the interference matrix to these roster keys",
                |s, v| {
                    let keys: Vec<String> =
                        v.split(',').map(str::trim).filter(|k| !k.is_empty()).map(String::from).collect();
                    if keys.is_empty() {
                        return false;
                    }
                    s.run.matrix_workloads = Some(keys);
                    true
                },
            ))
            .knob(Knob::valued(
                "--fleet-scenarios",
                "LIST",
                &["CS_FLEET_SCENARIOS"],
                "--fleet-scenarios requires a comma-separated list of scenario keys",
                "restrict fleet_resilience to these scenario keys",
                |s, v| {
                    let keys: Vec<String> =
                        v.split(',').map(str::trim).filter(|k| !k.is_empty()).map(String::from).collect();
                    if keys.is_empty() {
                        return false;
                    }
                    s.run.fleet_scenarios = Some(keys);
                    true
                },
            ))
            .knob(Knob::env_only(&["CS_SEED"], "base random seed", |s, v| {
                v.parse().map(|n| s.run.seed = n).is_ok()
            }))
            .knob(Knob::env_only(&["CS_MAX_CYCLES"], "per-window simulated-cycle safety cap", |s, v| {
                v.parse().map(|n| s.run.max_cycles = n).is_ok()
            }))
            .knob(Knob::env_only(
                &["CS_WATCHDOG"],
                "forward-progress watchdog grace period in cycles (0 disables)",
                |s, v| v.parse().map(|n| s.run.watchdog_grace = n).is_ok(),
            ))
            .knob(Knob::env_only(
                &["CS_INTERRUPT_AFTER"],
                "deterministic kill switch: checkpoint and stop at this cycle",
                |s, v| v.parse().map(|n| s.interrupt_after = Some(n)).is_ok(),
            ))
            .knob(Knob::env_only(
                &["CS_LLC_BYTES"],
                "override the LLC capacity in bytes (CI shrinks it to force \
                 cache pressure inside short smoke windows)",
                |s, v| v.parse().map(|n| s.run.llc_bytes = Some(n)).is_ok(),
            ))
    }

    /// Settings with defaults and the environment applied — what a binary
    /// that takes no arguments uses directly.
    pub fn settings_from_env(&self) -> CampaignSettings {
        let mut s = CampaignSettings::default();
        for k in &self.knobs {
            for env in k.envs {
                if let Ok(v) = std::env::var(env) {
                    match &k.env_apply {
                        Some(apply) => {
                            apply(&mut s, &v);
                        }
                        // Environment values are lenient by contract: an
                        // unparsable value leaves the previous setting.
                        None => {
                            (k.apply)(&mut s, &v);
                        }
                    }
                }
            }
        }
        apply_fault_env(&mut s.run);
        s
    }

    /// Every environment variable this registry understands: the knobs'
    /// declared names plus the out-of-registry family
    /// ([`EXTRA_KNOWN_ENVS`]).
    pub fn known_envs(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> =
            self.knobs.iter().flat_map(|k| k.envs.iter().copied()).collect();
        names.extend_from_slice(EXTRA_KNOWN_ENVS);
        names
    }

    /// Rejects `CS_*`-prefixed names the registry does not know — the
    /// typo (`CS_WINDOW_PARR`) that the lenient environment contract
    /// would otherwise silently ignore, leaving the user convinced a knob
    /// is on when it never applied. The error names the nearest valid
    /// knob when one is plausibly close.
    ///
    /// Takes the names as an iterator so tests can probe spellings
    /// without mutating shared process state.
    pub fn check_env_names<I>(&self, names: I) -> Result<(), ConfigError>
    where
        I: IntoIterator<Item = String>,
    {
        let known = self.known_envs();
        for name in names {
            if !name.starts_with("CS_") || known.iter().any(|k| *k == name) {
                continue;
            }
            let nearest = known
                .iter()
                .map(|k| (levenshtein(&name, k), *k))
                .min()
                .filter(|&(d, _)| d <= 3)
                .map(|(_, k)| k.to_owned());
            return Err(ConfigError::UnknownEnvKnob { name, nearest });
        }
        Ok(())
    }

    /// [`RunConfigBuilder::check_env_names`] over the live process
    /// environment.
    pub fn check_env(&self) -> Result<(), ConfigError> {
        self.check_env_names(std::env::vars().map(|(name, _)| name))
    }

    /// Parses `args` (no program name) on top of the environment.
    ///
    /// Flags are strict, and so is the environment's *shape*: an unknown
    /// `CS_*` variable is a usage error here even though unparsable
    /// values of known knobs stay lenient.
    pub fn parse<I>(&self, args: I) -> ParseOutcome
    where
        I: IntoIterator<Item = String>,
    {
        if let Err(e) = self.check_env() {
            return ParseOutcome::Error { message: e.to_string(), show_usage: false };
        }
        let mut s = self.settings_from_env();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--help" || arg == "-h" {
                return ParseOutcome::Help(self.help());
            }
            let Some(k) = self.knobs.iter().find(|k| k.flag == Some(arg.as_str())) else {
                return ParseOutcome::Error {
                    message: format!("unknown argument: {arg}"),
                    show_usage: true,
                };
            };
            if k.metavar.is_none() {
                (k.apply)(&mut s, "");
                continue;
            }
            let ok = args.next().is_some_and(|v| (k.apply)(&mut s, &v));
            if !ok {
                return ParseOutcome::Error { message: k.invalid.to_owned(), show_usage: false };
            }
        }
        ParseOutcome::Ready(Box::new(s))
    }

    /// The one-line usage string, derived from the registered flags.
    pub fn usage(&self) -> String {
        let mut line = format!("usage: {}", self.prog);
        for k in &self.knobs {
            let Some(flag) = k.flag else { continue };
            match k.metavar {
                Some(m) => line.push_str(&format!(" [{flag} {m}]")),
                None => line.push_str(&format!(" [{flag}]")),
            }
        }
        line
    }

    /// Full `--help` text: usage, one line per flag, then the env-only
    /// knobs — all generated from the registry.
    pub fn help(&self) -> String {
        let mut text = self.usage();
        text.push_str("\n\noptions:\n");
        for k in &self.knobs {
            let Some(flag) = k.flag else { continue };
            let head = match k.metavar {
                Some(m) => format!("{flag} {m}"),
                None => flag.to_owned(),
            };
            text.push_str(&format!("  {head:<24} {}", k.help));
            if !k.envs.is_empty() {
                text.push_str(&format!(" [env: {}]", k.envs.join(", ")));
            }
            text.push('\n');
        }
        let env_only: Vec<&Knob> = self.knobs.iter().filter(|k| k.flag.is_none()).collect();
        if !env_only.is_empty() {
            text.push_str("\nenvironment-only knobs:\n");
            for k in env_only {
                text.push_str(&format!("  {:<24} {}\n", k.envs.join(", "), k.help));
            }
        }
        text
    }
}

/// Edit distance between two knob names, for "did you mean" suggestions.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Builds the deterministic fault-injection plan from `CS_FAULT_*`. The
/// four variables are interdependent (rates default differently when a
/// latency is present), so they resolve as one unit rather than as
/// individual knobs.
fn apply_fault_env(cfg: &mut RunConfig) {
    fn env_u64(name: &str, default: u64) -> u64 {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    }
    fn env_f64(name: &str, default: f64) -> f64 {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    }
    #[allow(clippy::cast_possible_truncation)]
    let dram_lat = env_u64("CS_FAULT_DRAM_LAT", 0) as u32;
    let pf_drop = env_f64("CS_FAULT_PF_DROP", 0.0);
    if dram_lat > 0 || pf_drop > 0.0 {
        cfg.fault = Some(cs_memsys::FaultPlan {
            dram_extra_latency: dram_lat,
            dram_perturb_rate: env_f64("CS_FAULT_DRAM_RATE", 1.0),
            prefetch_drop_rate: pf_drop,
            seed: env_u64("CS_FAULT_SEED", 0xC10D),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    fn ready(outcome: ParseOutcome) -> CampaignSettings {
        match outcome {
            ParseOutcome::Ready(s) => *s,
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn flags_apply_and_compose() {
        let b = RunConfigBuilder::campaign("all_figures");
        let s = ready(b.parse(argv(&[
            "--resume",
            "--no-skip",
            "--jobs",
            "3",
            "--results-dir",
            "out",
            "--warmup-instr",
            "1000",
            "--measure-instr",
            "2000",
            "--sample-windows",
            "4",
            "--sample-period",
            "500",
            "--sample-warmup",
            "50",
            "--window-par",
            "--sample-inflight",
            "2",
            "--ckpt-cycles",
            "0",
            "--max-retries",
            "2",
            "--matrix-workloads",
            "web_search,polluter",
            "--fleet-scenarios",
            "metastable,gray_fleet",
        ])));
        assert!(s.resume);
        assert!(!s.run.cycle_skip);
        assert_eq!(s.run.jobs, 3);
        assert_eq!(s.results_dir, PathBuf::from("out"));
        assert_eq!(s.run.warmup_instr, 1000);
        assert_eq!(s.run.measure_instr, 2000);
        assert_eq!(s.run.sample_windows, 4);
        assert_eq!(s.run.sample_period, 500);
        assert_eq!(s.run.sample_warmup_instr, 50);
        assert!(s.run.window_par);
        assert_eq!(s.run.sample_inflight, 2);
        assert_eq!(s.ckpt_cycles, Some(0));
        assert_eq!(s.max_retries, Some(2));
        assert_eq!(
            s.run.matrix_workloads,
            Some(vec!["web_search".to_owned(), "polluter".to_owned()])
        );
        assert_eq!(
            s.run.fleet_scenarios,
            Some(vec!["metastable".to_owned(), "gray_fleet".to_owned()])
        );
    }

    #[test]
    fn invalid_flag_values_keep_their_historical_messages() {
        let b = RunConfigBuilder::campaign("all_figures");
        for (args, want) in [
            (vec!["--jobs", "0"], "--jobs requires a positive integer"),
            (vec!["--jobs"], "--jobs requires a positive integer"),
            (vec!["--measure-instr", "0"], "--measure-instr requires a positive instruction count"),
            (vec!["--results-dir"], "--results-dir requires a path"),
            (
                vec!["--sample-inflight", "0"],
                "--sample-inflight requires a positive window count",
            ),
            (
                vec!["--matrix-workloads", ","],
                "--matrix-workloads requires a comma-separated list of roster keys",
            ),
            (
                vec!["--fleet-scenarios", ","],
                "--fleet-scenarios requires a comma-separated list of scenario keys",
            ),
        ] {
            match b.parse(argv(&args)) {
                ParseOutcome::Error { message, show_usage } => {
                    assert_eq!(message, want);
                    assert!(!show_usage, "flag value errors never print usage");
                }
                other => panic!("{args:?}: expected Error, got {other:?}"),
            }
        }
        match b.parse(argv(&["--frobnicate"])) {
            ParseOutcome::Error { message, show_usage } => {
                assert_eq!(message, "unknown argument: --frobnicate");
                assert!(show_usage, "unknown arguments print usage");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn help_is_generated_from_the_registry() {
        let b = RunConfigBuilder::campaign("all_figures");
        let usage = b.usage();
        for flag in [
            "--resume",
            "--no-skip",
            "--results-dir DIR",
            "--jobs N",
            "--ckpt-cycles N",
            "--max-retries N",
            "--warmup-instr N",
            "--measure-instr N",
            "--sample-windows K",
            "--sample-period N",
            "--sample-warmup N",
            "--window-par",
            "--sample-inflight N",
            "--matrix-workloads LIST",
            "--fleet-scenarios LIST",
        ] {
            assert!(usage.contains(&format!("[{flag}]")), "usage must list {flag}: {usage}");
        }
        let help = match b.parse(argv(&["--help"])) {
            ParseOutcome::Help(h) => h,
            other => panic!("expected Help, got {other:?}"),
        };
        assert!(help.contains("CS_JOBS"), "help must name env vars");
        assert!(help.contains("CS_SEED"), "help must list env-only knobs");
        assert!(help.contains("CS_MATRIX_WORKLOADS"));
        assert!(help.contains("CS_FLEET_SCENARIOS"));
    }

    #[test]
    fn unknown_cs_env_knobs_are_caught_with_a_suggestion() {
        let b = RunConfigBuilder::campaign("all_figures");
        let names = |list: &[&str]| list.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();

        // Every registered spelling, the out-of-registry family, and
        // non-CS variables pass untouched.
        let mut fine = b.known_envs().iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        fine.extend(names(&["PATH", "HOME", "CARGO_TARGET_DIR", "CSV_SEPARATOR"]));
        b.check_env_names(fine).expect("known and non-CS names must pass");

        // The motivating typo: a doubled letter suggests the real knob.
        let err = b
            .check_env_names(names(&["CS_WINDOW_PARR"]))
            .expect_err("typos must be rejected");
        match err {
            ConfigError::UnknownEnvKnob { ref name, ref nearest } => {
                assert_eq!(name, "CS_WINDOW_PARR");
                assert_eq!(nearest.as_deref(), Some("CS_WINDOW_PAR"));
            }
            other => panic!("expected UnknownEnvKnob, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("CS_WINDOW_PARR") && msg.contains("CS_WINDOW_PAR"), "{msg}");

        // A CS_ name near nothing gets no suggestion but still fails.
        match b.check_env_names(names(&["CS_TURBO_ENCABULATOR"])) {
            Err(ConfigError::UnknownEnvKnob { nearest: None, .. }) => {}
            other => panic!("expected a suggestion-free rejection, got {other:?}"),
        }

        for (typo, want) in [
            ("CS_FLEET_SCENARIO", "CS_FLEET_SCENARIOS"),
            ("CS_PARANOID1", "CS_PARANOID"),
            ("CS_JOBZ", "CS_JOBS"),
        ] {
            match b.check_env_names(names(&[typo])) {
                Err(ConfigError::UnknownEnvKnob { nearest: Some(n), .. }) => {
                    assert_eq!(n, want, "for {typo}");
                }
                other => panic!("{typo}: expected a suggestion, got {other:?}"),
            }
        }
    }

    #[test]
    fn later_flags_win_and_flags_outrank_env() {
        // Env precedence itself is covered by the cs-bench round-trip test
        // (process env is shared state; mutating it here would race).
        let b = RunConfigBuilder::campaign("all_figures");
        let s = ready(b.parse(argv(&["--jobs", "2", "--jobs", "5"])));
        assert_eq!(s.run.jobs, 5);
    }
}
