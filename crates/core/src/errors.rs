//! Typed errors for the experiment harness.
//!
//! The §3.1 methodology is only trustworthy when violations are loud: a
//! structurally impossible [`crate::harness::RunConfig`] must be rejected
//! before any cycle is simulated ([`ConfigError`]), and a run that cannot
//! make forward progress must be diagnosed and cut short
//! ([`HarnessError::Stalled`]) rather than silently burning its cycle
//! budget. Campaign drivers that need "the window completed" as a hard
//! invariant use [`crate::harness::run_strict`], which converts a truncated
//! window into [`HarnessError::Truncated`].

use std::fmt;

/// A structurally invalid [`crate::harness::RunConfig`], detected before
/// any simulation work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0`: there is nothing to measure.
    NoWorkers,
    /// A worker or polluter was placed on a core the machine does not have.
    PlacementExceedsCores {
        /// The offending global core id.
        core: usize,
        /// Number of cores the machine actually has.
        available: usize,
    },
    /// A core was assigned to both a worker and a polluter thread.
    PlacementOverlap {
        /// The doubly-assigned global core id.
        core: usize,
    },
    /// `dram_channels == Some(0)`: the machine could never move a byte.
    ZeroDramChannels,
    /// A cache-capacity override does not fit the level's geometry
    /// (capacity must be a positive multiple of `associativity * 64`).
    InvalidCacheSize {
        /// Which override field is invalid (`"llc_bytes"`, `"l1i_bytes"`,
        /// `"l2_bytes"`).
        which: &'static str,
        /// The rejected capacity.
        bytes: u64,
    },
    /// A window length that makes the run degenerate (`measure_instr == 0`
    /// or `max_cycles == 0`).
    ZeroWindow {
        /// Which field is zero.
        which: &'static str,
    },
    /// `jobs == 0`: no thread would ever pick up a unit of work.
    ZeroJobs,
    /// Sampling asks for more measurement windows than there are measured
    /// instructions, so some window would have a zero-instruction target.
    SampleWindowsExceedMeasure {
        /// The requested number of sampling windows.
        windows: usize,
        /// The measurement budget they must share.
        measure_instr: u64,
    },
    /// An LLC way-partition mask is degenerate: it selects no ways at all,
    /// or names a way the cache does not have.
    InvalidWayMask {
        /// The tenant whose mask is rejected.
        tenant: usize,
        /// The rejected mask, one bit per LLC way.
        mask: u64,
        /// LLC associativity the mask must fit inside.
        assoc: usize,
    },
    /// A per-tenant DRAM bandwidth budget smaller than one cache line:
    /// no single transfer could ever be admitted.
    BudgetBelowLineSize {
        /// The tenant whose budget is rejected.
        tenant: usize,
        /// The rejected per-window byte budget.
        bytes: u64,
    },
    /// An interference-matrix run named a workload that is not in the
    /// matrix roster.
    UnknownMatrixWorkload {
        /// The unrecognized roster key.
        name: String,
    },
    /// A fleet-resilience run named a scenario that is not in the
    /// scenario roster.
    UnknownFleetScenario {
        /// The unrecognized scenario key.
        name: String,
    },
    /// A `CS_*` environment variable does not name any registered knob —
    /// almost always a typo (`CS_WINDOW_PARR`) that would otherwise be
    /// silently ignored, leaving the run configured differently than the
    /// operator believes.
    UnknownEnvKnob {
        /// The unrecognized environment variable name.
        name: String,
        /// The closest registered knob, when one is plausibly close.
        nearest: Option<String>,
    },
    /// A fleet simulation was asked to use a service-time table with no
    /// usable entry for a workload (zero requests or zero cycles measured,
    /// so no per-request service time can be derived).
    EmptyServiceTable {
        /// The workload whose service-time entry is missing or degenerate.
        workload: String,
    },
    /// A fleet simulation configuration was rejected before any event was
    /// scheduled (see [`cs_fleet::FleetConfigError`]).
    Fleet(cs_fleet::FleetConfigError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoWorkers => write!(f, "config has zero workers; nothing to measure"),
            ConfigError::PlacementExceedsCores { core, available } => {
                write!(f, "placement uses core {core} but the machine has {available} cores")
            }
            ConfigError::PlacementOverlap { core } => {
                write!(f, "core {core} is assigned to both a worker and a polluter")
            }
            ConfigError::ZeroDramChannels => {
                write!(f, "dram_channels is 0; the machine could never move a byte")
            }
            ConfigError::InvalidCacheSize { which, bytes } => {
                write!(
                    f,
                    "{which} = {bytes} is not a positive multiple of the level's \
                     associativity x 64-byte lines"
                )
            }
            ConfigError::ZeroWindow { which } => {
                write!(f, "{which} is 0; the window could never complete")
            }
            ConfigError::ZeroJobs => {
                write!(f, "jobs is 0; no worker thread would ever run")
            }
            ConfigError::SampleWindowsExceedMeasure { windows, measure_instr } => {
                write!(
                    f,
                    "sample_windows = {windows} exceeds measure_instr = {measure_instr}; \
                     some window would have a zero-instruction target"
                )
            }
            ConfigError::InvalidWayMask { tenant, mask, assoc } => {
                write!(
                    f,
                    "tenant {tenant} way mask {mask:#x} selects no way or names a way \
                     beyond the {assoc}-way LLC"
                )
            }
            ConfigError::BudgetBelowLineSize { tenant, bytes } => {
                write!(
                    f,
                    "tenant {tenant} DRAM budget of {bytes} bytes per window is smaller \
                     than one 64-byte line; nothing could ever be admitted"
                )
            }
            ConfigError::UnknownMatrixWorkload { name } => {
                write!(
                    f,
                    "unknown interference-matrix workload {name:?}; valid keys are \
                     data_serving, mapreduce, media_streaming, sat_solver, web_frontend, \
                     web_search, polluter, cpu_bound"
                )
            }
            ConfigError::UnknownFleetScenario { name } => {
                write!(
                    f,
                    "unknown fleet-resilience scenario {name:?}; valid keys are \
                     baseline, gray_fleet, rack_outage, metastable"
                )
            }
            ConfigError::UnknownEnvKnob { name, nearest } => {
                write!(f, "unknown environment knob {name}")?;
                if let Some(n) = nearest {
                    write!(f, "; did you mean {n}?")?;
                }
                Ok(())
            }
            ConfigError::EmptyServiceTable { workload } => {
                write!(
                    f,
                    "service-time table has no usable entry for {workload}; the harness \
                     measured zero requests or zero cycles, so no fleet service time exists"
                )
            }
            ConfigError::Fleet(e) => write!(f, "fleet config rejected: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A failed experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The configuration was rejected before simulation.
    Config(ConfigError),
    /// The forward-progress watchdog fired: a measured core stopped
    /// committing for a full grace period during the named window.
    Stalled {
        /// The livelocked core.
        core: usize,
        /// How long it went without committing, in cycles.
        cycles_without_commit: u64,
        /// Which window stalled (`"warmup"` or `"measure"`).
        window: &'static str,
    },
    /// A window hit the `max_cycles` safety cap before committing its
    /// instruction target (only raised by [`crate::harness::run_strict`];
    /// [`crate::harness::run`] reports this as
    /// [`crate::harness::RunStatus::Truncated`] instead).
    Truncated {
        /// Instructions actually committed in the short window.
        committed: u64,
        /// The instruction target the window was supposed to reach.
        target: u64,
    },
    /// The run was deliberately cut short by a stop request (SIGINT/SIGTERM
    /// or a deterministic test trigger) **after** a checkpoint was saved.
    /// This is not a failure: re-running the same unit under the same
    /// checkpoint directory resumes from the snapshot and produces results
    /// byte-identical to an uninterrupted run.
    Interrupted,
    /// The `CS_PARANOID` end-of-run auditor found an accounting invariant
    /// violated; the result cannot be trusted and is withheld.
    Audit(AuditError),
    /// A window-parallel worker could not decode the chip snapshot it was
    /// handed for a measurement window. The snapshot was encoded by the
    /// same process (or by the interrupted process whose checkpoint this
    /// run resumed), so this is structural — a codec bug or a corrupted
    /// checkpoint payload — never a property of the workload.
    WindowHandoff {
        /// Zero-based index of the window whose snapshot failed to decode.
        window: usize,
        /// The decoder's diagnosis.
        detail: String,
    },
}

/// A violated accounting invariant, detected by the optional end-of-run
/// auditor (enabled by setting the `CS_PARANOID` environment variable).
///
/// These are conservation laws the simulator maintains by construction;
/// a violation means a counter-update bug (or a checkpoint/restore gap),
/// never a property of the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A measured core's cycle breakdown does not partition its window:
    /// commit-bucket cycles plus stall-bucket cycles must equal the cycles
    /// the core was measured for.
    CycleBreakdown {
        /// The offending global core id.
        core: usize,
        /// Sum of the commit and stall buckets.
        classified: u64,
        /// Cycles the core's stats window actually spans.
        cycles: u64,
    },
    /// `cycles_skipped` exceeds `cycles_total`: the event-driven skipper
    /// claims to have fast-forwarded more cycles than elapsed.
    SkipExceedsTotal {
        /// Cycles the skipper claims to have jumped over.
        skipped: u64,
        /// Total cycles the chip advanced.
        total: u64,
    },
    /// A cache level reports more hits than accesses for one access class.
    HitsExceedAccesses {
        /// The offending global core id.
        core: usize,
        /// Which level/class (e.g. `"l1d"`).
        level: &'static str,
        /// Hits reported for the class.
        hits: u64,
        /// Accesses reported for the class.
        accesses: u64,
    },
    /// A sampled run's measurement window does not partition its span:
    /// summed commit and stall buckets must equal the window's cycles
    /// times the number of measured cores.
    WindowBreakdown {
        /// Zero-based index of the offending window.
        window: usize,
        /// Sum of the window's commit and stall buckets over all cores.
        classified: u64,
        /// Cycles the window spans, summed over the measured cores.
        cycles: u64,
    },
    /// A sampled run's per-window instruction counts disagree with the
    /// total the merged statistics report (or fall short of the
    /// configured measurement budget on a completed run).
    WindowInstructionSum {
        /// Instructions summed over the per-window samples.
        summed: u64,
        /// The total they must reach.
        total: u64,
    },
    /// A fleet simulation's request/attempt conservation audit failed
    /// (see [`cs_fleet::FleetAuditError`] for the specific law violated).
    Fleet(cs_fleet::FleetAuditError),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::CycleBreakdown { core, classified, cycles } => write!(
                f,
                "core {core}: commit+stall buckets classify {classified} cycles but the \
                 window spans {cycles}"
            ),
            AuditError::SkipExceedsTotal { skipped, total } => write!(
                f,
                "cycle skipper claims {skipped} skipped cycles out of only {total} total"
            ),
            AuditError::HitsExceedAccesses { core, level, hits, accesses } => write!(
                f,
                "core {core} {level}: {hits} hits exceed {accesses} accesses"
            ),
            AuditError::WindowBreakdown { window, classified, cycles } => write!(
                f,
                "sampling window {window}: commit+stall buckets classify {classified} \
                 core-cycles but the window spans {cycles}"
            ),
            AuditError::WindowInstructionSum { summed, total } => write!(
                f,
                "sampling windows sum to {summed} instructions but the run reports {total}"
            ),
            AuditError::Fleet(e) => write!(f, "fleet conservation violated: {e}"),
        }
    }
}

impl From<cs_fleet::FleetAuditError> for AuditError {
    fn from(e: cs_fleet::FleetAuditError) -> Self {
        AuditError::Fleet(e)
    }
}

impl From<cs_fleet::FleetAuditError> for HarnessError {
    fn from(e: cs_fleet::FleetAuditError) -> Self {
        HarnessError::Audit(AuditError::Fleet(e))
    }
}

impl std::error::Error for AuditError {}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Config(e) => write!(f, "invalid config: {e}"),
            HarnessError::Stalled { core, cycles_without_commit, window } => {
                write!(
                    f,
                    "watchdog: core {core} committed nothing for {cycles_without_commit} \
                     cycles during the {window} window"
                )
            }
            HarnessError::Truncated { committed, target } => {
                write!(
                    f,
                    "window truncated by the cycle cap: committed {committed} of {target} \
                     instructions"
                )
            }
            HarnessError::Interrupted => {
                write!(f, "run interrupted after saving a checkpoint; re-run to resume")
            }
            HarnessError::Audit(e) => write!(f, "paranoid audit failed: {e}"),
            HarnessError::WindowHandoff { window, detail } => {
                write!(
                    f,
                    "window-parallel handoff: worker could not decode the snapshot for \
                     sampling window {window}: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Config(e) => Some(e),
            HarnessError::Audit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AuditError> for HarnessError {
    fn from(e: AuditError) -> Self {
        HarnessError::Audit(e)
    }
}

impl From<ConfigError> for HarnessError {
    fn from(e: ConfigError) -> Self {
        HarnessError::Config(e)
    }
}

impl From<cs_fleet::FleetConfigError> for ConfigError {
    fn from(e: cs_fleet::FleetConfigError) -> Self {
        ConfigError::Fleet(e)
    }
}

impl From<cs_fleet::FleetConfigError> for HarnessError {
    fn from(e: cs_fleet::FleetConfigError) -> Self {
        HarnessError::Config(ConfigError::Fleet(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConfigError::InvalidCacheSize { which: "llc_bytes", bytes: 100 };
        assert!(e.to_string().contains("llc_bytes"));
        assert!(e.to_string().contains("100"));
        let h = HarnessError::Stalled { core: 3, cycles_without_commit: 9000, window: "measure" };
        assert!(h.to_string().contains("core 3"));
        assert!(h.to_string().contains("measure"));
        let t = HarnessError::Truncated { committed: 5, target: 10 };
        assert!(t.to_string().contains("5"));
        assert!(t.to_string().contains("10"));
        let i = HarnessError::Interrupted;
        assert!(i.to_string().contains("checkpoint"));
        let a = HarnessError::Audit(AuditError::SkipExceedsTotal { skipped: 9, total: 4 });
        assert!(a.to_string().contains("9"));
        assert!(a.to_string().contains("4"));
        use std::error::Error;
        assert!(a.source().is_some(), "audit errors carry a typed source");
    }

    #[test]
    fn config_error_converts_to_harness_error() {
        let h: HarnessError = ConfigError::NoWorkers.into();
        assert_eq!(h, HarnessError::Config(ConfigError::NoWorkers));
        use std::error::Error;
        assert!(h.source().is_some());
    }
}
