//! The SMARTS sampling machine: window state, snapshot handoff, and the
//! overlapped window-parallel executor.
//!
//! The sequential sampler ([`Phase::Sample`]) interleaves functional
//! fast-forward spans with detailed `Warm→Measure` windows on one strand.
//! The window-parallel sampler ([`Phase::WindowPar`], enabled by
//! [`RunConfig::window_par`]) decouples them: at each window boundary the
//! harness snapshots the chip ([`cs_uarch::Chip::encode_snap`]), hands the
//! `(window_index, snapshot)` pair to a detailed-simulation worker, and
//! immediately resumes functional warming toward the next boundary. A
//! worker restores the snapshot into a freshly built chip (same sources,
//! same seeds — the proven checkpoint-restore recipe), runs the detailed
//! excursion, and returns a [`WindowHarvest`] that is folded into the
//! running [`SampleAcc`] strictly in window-index order.
//!
//! # Why folding in window-index order preserves byte-identity
//!
//! Each window's harvest is a pure function of its snapshot bytes: the
//! worker chip is rebuilt deterministically, the restore is byte-exact,
//! and the excursion is single-threaded and seeded. The warming strand
//! never observes the workers. So the only ordering that could leak into
//! the result is the fold order into the accumulator — which is pinned to
//! `0, 1, 2, …` by joining the oldest in-flight window first. Any
//! `jobs`/`sample_inflight` value therefore produces the same bytes, and
//! a run killed with windows in flight resumes by simply re-running every
//! window not yet folded (the snapshots are part of the checkpoint).

use crate::errors::HarnessError;
use crate::harness::{RunConfig, WindowSample};
use cs_memsys::stats::CoreMemStats;
use cs_trace::snap::{Dec, Enc, SnapError};
use cs_uarch::{Chip, CoreStats, Fidelity, WatchedWindow, WindowOutcome};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which leg of one sequential sampling window is in flight.
pub(crate) enum SampleSub {
    /// Functional fast-forward: the cores retire at fidelity
    /// [`cs_uarch::Fidelity::Functional`] while the memory hierarchy and
    /// branch predictor keep warming.
    Forward {
        /// Cursor of the in-flight fast-forward span.
        window: WatchedWindow,
    },
    /// Detailed re-warm: full out-of-order modeling, statistics discarded.
    Warm {
        /// Cursor of the in-flight re-warm span.
        window: WatchedWindow,
    },
    /// Detailed measurement: statistics were reset at entry and are
    /// harvested into the accumulator at completion.
    Measure {
        /// Cursor of the in-flight measurement window.
        window: WatchedWindow,
        /// Request-meter total at window entry.
        requests_at_start: u64,
    },
}

/// Everything one detailed measurement window contributes to the sampled
/// aggregate, collected on whichever chip ran the window (the main strand
/// for the sequential sampler, a restored worker chip for the
/// window-parallel one) and folded into [`SampleAcc`] in window-index
/// order. The wall-clock fields ride along for telemetry only and never
/// touch simulated state.
pub(crate) struct WindowHarvest {
    /// The per-window sample row.
    pub(crate) sample: WindowSample,
    /// Worker-core pipeline statistics over the window.
    pub(crate) cores: Vec<CoreStats>,
    /// Worker-core memory statistics over the window.
    pub(crate) mem: Vec<CoreMemStats>,
    /// Polluter-core memory statistics over the window.
    pub(crate) polluter_mem: Vec<CoreMemStats>,
    /// DRAM totals over the window (stats were reset at window entry).
    pub(crate) dram: cs_memsys::dram::DramStats,
    /// The detailed re-warm span hit the cycle cap.
    pub(crate) forward_truncated: bool,
    /// The measurement window hit the cycle cap.
    pub(crate) measure_truncated: bool,
    /// Cycles simulated off the warming strand (worker excursions only;
    /// `0` for the sequential sampler, whose windows advance the strand's
    /// own cycle counter).
    pub(crate) extra_cycles: u64,
    /// Of `extra_cycles`, cycles covered by event-driven jumps.
    pub(crate) extra_skipped: u64,
    /// Wall-clock seconds the detailed re-warm took (telemetry only).
    pub(crate) warm_secs: f64,
    /// Wall-clock seconds the measurement took (telemetry only).
    pub(crate) measure_secs: f64,
}

impl WindowHarvest {
    /// Gathers one completed window's statistics from `chip` (whose stats
    /// were reset at window entry, so everything read here is a window
    /// delta). Truncation flags, extra-cycle accounting and timings are
    /// left zeroed for the caller to fill in.
    pub(crate) fn collect(
        chip: &Chip,
        worker_cores: &[usize],
        polluter_cores: &[usize],
        out: &WindowOutcome,
        window_requests: u64,
    ) -> Self {
        let mem_stats = chip.mem().stats();
        let cores: Vec<CoreStats> =
            worker_cores.iter().map(|&c| chip.cores()[c].stats().clone()).collect();
        let sum = |f: &dyn Fn(&CoreStats) -> u64| cores.iter().map(f).sum::<u64>();
        let sample = WindowSample {
            cycles: out.cycles,
            instructions: out.committed,
            committing: [sum(&|c| c.committing_cycles[0]), sum(&|c| c.committing_cycles[1])],
            stalled: [sum(&|c| c.stalled_cycles[0]), sum(&|c| c.stalled_cycles[1])],
            memory_cycles: sum(&|c| c.memory_cycles),
            requests: window_requests,
        };
        WindowHarvest {
            sample,
            cores,
            mem: worker_cores.iter().map(|&c| mem_stats.per_core[c].clone()).collect(),
            polluter_mem: polluter_cores
                .iter()
                .map(|&c| mem_stats.per_core[c].clone())
                .collect(),
            dram: chip.mem().dram_stats(),
            forward_truncated: false,
            measure_truncated: false,
            extra_cycles: 0,
            extra_skipped: 0,
            warm_secs: 0.0,
            measure_secs: 0.0,
        }
    }
}

/// Running aggregate of a sampled run, carried (and checkpointed) across
/// windows: merged worker/polluter statistics over the measurement windows
/// completed so far, the per-window samples, and the main-warmup outcome
/// needed for the final status.
#[derive(Clone)]
pub(crate) struct SampleAcc {
    /// Outcome of the completed main warmup window.
    pub(crate) warmup: WindowOutcome,
    /// Request-meter total at statistics reset after main warmup.
    pub(crate) requests_at_warmup: u64,
    /// Worker-core pipeline statistics merged over completed windows
    /// (empty until the first window completes).
    pub(crate) cores: Vec<CoreStats>,
    /// Worker-core memory statistics merged over completed windows.
    pub(crate) mem: Vec<CoreMemStats>,
    /// Polluter-core memory statistics merged over completed windows.
    pub(crate) polluter_mem: Vec<CoreMemStats>,
    /// DRAM totals merged over completed windows.
    pub(crate) dram: cs_memsys::dram::DramStats,
    /// One entry per completed measurement window.
    pub(crate) samples: Vec<WindowSample>,
    /// A fast-forward or re-warm span hit the cycle cap.
    pub(crate) forward_truncated: bool,
    /// A measurement window hit the cycle cap.
    pub(crate) measure_truncated: bool,
    /// Cycles simulated off the warming strand by window-parallel worker
    /// excursions (the `cycles_total` partition term; `0` sequentially).
    pub(crate) extra_cycles: u64,
    /// Of `extra_cycles`, cycles covered by event-driven jumps.
    pub(crate) extra_skipped: u64,
}

impl SampleAcc {
    pub(crate) fn new(warmup: WindowOutcome, requests_at_warmup: u64) -> Self {
        Self {
            warmup,
            requests_at_warmup,
            cores: Vec::new(),
            mem: Vec::new(),
            polluter_mem: Vec::new(),
            dram: cs_memsys::dram::DramStats::default(),
            samples: Vec::new(),
            forward_truncated: false,
            measure_truncated: false,
            extra_cycles: 0,
            extra_skipped: 0,
        }
    }

    /// Folds one window's harvest into the running aggregate. Folding is
    /// strictly in window-index order — `samples.len()` is therefore also
    /// the index of the next window to fold, which is what lets a restored
    /// run re-dispatch exactly the windows not yet folded.
    pub(crate) fn fold(&mut self, h: WindowHarvest) {
        self.samples.push(h.sample);
        if self.cores.is_empty() {
            self.cores = h.cores;
            self.mem = h.mem;
            self.polluter_mem = h.polluter_mem;
        } else {
            for (acc, new) in self.cores.iter_mut().zip(&h.cores) {
                acc.absorb(new);
            }
            for (acc, new) in self.mem.iter_mut().zip(&h.mem) {
                acc.merge_from(new);
            }
            for (acc, new) in self.polluter_mem.iter_mut().zip(&h.polluter_mem) {
                acc.merge_from(new);
            }
        }
        self.dram.reads += h.dram.reads;
        self.dram.writes += h.dram.writes;
        self.dram.bytes += h.dram.bytes;
        self.dram.busy_cycles += h.dram.busy_cycles;
        self.forward_truncated |= h.forward_truncated;
        self.measure_truncated |= h.measure_truncated;
        self.extra_cycles += h.extra_cycles;
        self.extra_skipped += h.extra_skipped;
    }

    /// Folds one completed measurement window's statistics straight off
    /// the live chip (the sequential sampler's path).
    pub(crate) fn harvest(
        &mut self,
        chip: &Chip,
        worker_cores: &[usize],
        polluter_cores: &[usize],
        out: &WindowOutcome,
        window_requests: u64,
    ) {
        self.fold(WindowHarvest::collect(
            chip,
            worker_cores,
            polluter_cores,
            out,
            window_requests,
        ));
    }

    pub(crate) fn encode_snap(&self, e: &mut Enc) {
        e.u64(self.warmup.cycles);
        e.u64(self.warmup.committed);
        e.bool(self.warmup.reached_target);
        e.u64(self.requests_at_warmup);
        e.bool(self.forward_truncated);
        e.bool(self.measure_truncated);
        e.len(self.cores.len());
        for c in &self.cores {
            c.encode_snap(e);
        }
        e.len(self.mem.len());
        for m in &self.mem {
            m.encode_snap(e);
        }
        e.len(self.polluter_mem.len());
        for m in &self.polluter_mem {
            m.encode_snap(e);
        }
        e.u64(self.dram.reads);
        e.u64(self.dram.writes);
        e.u64(self.dram.bytes);
        e.u64(self.dram.busy_cycles);
        e.len(self.samples.len());
        for s in &self.samples {
            e.u64(s.cycles);
            e.u64(s.instructions);
            e.u64(s.committing[0]);
            e.u64(s.committing[1]);
            e.u64(s.stalled[0]);
            e.u64(s.stalled[1]);
            e.u64(s.memory_cycles);
            e.u64(s.requests);
        }
        e.u64(self.extra_cycles);
        e.u64(self.extra_skipped);
    }

    pub(crate) fn decode_snap(d: &mut Dec<'_>) -> Result<Self, SnapError> {
        let warmup = WindowOutcome {
            cycles: d.u64()?,
            committed: d.u64()?,
            reached_target: d.bool()?,
        };
        let requests_at_warmup = d.u64()?;
        let forward_truncated = d.bool()?;
        let measure_truncated = d.bool()?;
        let mut cores = Vec::new();
        for _ in 0..d.len()? {
            cores.push(CoreStats::decode_snap(d)?);
        }
        let mut mem = Vec::new();
        for _ in 0..d.len()? {
            let mut m = CoreMemStats::default();
            m.restore_snap(d)?;
            mem.push(m);
        }
        let mut polluter_mem = Vec::new();
        for _ in 0..d.len()? {
            let mut m = CoreMemStats::default();
            m.restore_snap(d)?;
            polluter_mem.push(m);
        }
        let dram = cs_memsys::dram::DramStats {
            reads: d.u64()?,
            writes: d.u64()?,
            bytes: d.u64()?,
            busy_cycles: d.u64()?,
        };
        let mut samples = Vec::new();
        for _ in 0..d.len()? {
            samples.push(WindowSample {
                cycles: d.u64()?,
                instructions: d.u64()?,
                committing: [d.u64()?, d.u64()?],
                stalled: [d.u64()?, d.u64()?],
                memory_cycles: d.u64()?,
                requests: d.u64()?,
            });
        }
        let extra_cycles = d.u64()?;
        let extra_skipped = d.u64()?;
        Ok(Self {
            warmup,
            requests_at_warmup,
            cores,
            mem,
            polluter_mem,
            dram,
            samples,
            forward_truncated,
            measure_truncated,
            extra_cycles,
            extra_skipped,
        })
    }
}

/// Resumable execution position of the harness's §3.1 pipeline.
///
/// A checkpoint is this phase marker plus the full chip snapshot; restoring
/// re-enters the phase loop exactly where the interrupted process left it.
/// The phase records which threads exist (workers are only attached when
/// leaving `PreWarm`), so the restore path can rebuild the chip's thread
/// population before handing the snapshot to `Chip::restore_snap`.
pub(crate) enum Phase {
    /// Polluters (if any) are warming the LLC alone; workers do not exist
    /// yet. `cycles_done` counts pre-warm cycles already simulated.
    PreWarm {
        /// Pre-warm cycles already simulated.
        cycles_done: u64,
    },
    /// The warmup window is in flight.
    Warmup {
        /// Cursor of the in-flight warmup window.
        window: WatchedWindow,
    },
    /// The measurement window is in flight; the warmup outcome and the
    /// request-meter baseline are carried so the final result can be
    /// assembled without re-running warmup.
    Measure {
        /// Cursor of the in-flight measurement window.
        window: WatchedWindow,
        /// Outcome of the completed warmup window.
        warmup: WindowOutcome,
        /// Request-meter total at statistics reset, the throughput baseline.
        requests_at_warmup: u64,
    },
    /// Sequential SMARTS sampling is in flight: window `k` of
    /// [`RunConfig::sample_windows`] is in sub-phase `sub`, with the
    /// merged statistics of completed windows in `acc`. The fidelity each
    /// core is running at is part of the chip snapshot, so a restore
    /// mid-`Forward` resumes functional and mid-`Warm`/`Measure` resumes
    /// detailed without any re-switching here.
    Sample {
        /// Zero-based index of the in-flight window.
        k: usize,
        /// Which leg of the window is running.
        sub: SampleSub,
        /// Aggregate over completed windows.
        acc: Box<SampleAcc>,
    },
    /// Window-parallel sampling is in flight: the warming strand is
    /// fast-forwarding toward boundary `next_k` while the snapshots in
    /// `pending` (dispatched at earlier boundaries but not yet folded)
    /// run — or on restore, re-run — as detailed worker excursions. The
    /// chip snapshot accompanying this phase is the *warming strand*;
    /// worker state is never checkpointed, because each window is a pure
    /// function of its pending snapshot.
    WindowPar {
        /// Index of the next window boundary the warming strand will reach
        /// (every window below it has already been dispatched).
        next_k: usize,
        /// Cursor of the in-flight fast-forward span; `None` once every
        /// boundary has been reached and only folding remains.
        forward: Option<WatchedWindow>,
        /// Aggregate over folded windows (`acc.samples.len()` is the index
        /// of the next window to fold).
        acc: Box<SampleAcc>,
        /// `(window_index, chip snapshot)` for every dispatched-but-unfolded
        /// window, oldest first.
        pending: Vec<(usize, Arc<Vec<u8>>)>,
    },
}

impl Phase {
    pub(crate) fn encode_snap(&self, e: &mut Enc) {
        match self {
            Phase::PreWarm { cycles_done } => {
                e.u8(0);
                e.u64(*cycles_done);
            }
            Phase::Warmup { window } => {
                e.u8(1);
                window.encode_snap(e);
            }
            Phase::Measure { window, warmup, requests_at_warmup } => {
                e.u8(2);
                window.encode_snap(e);
                e.u64(warmup.cycles);
                e.u64(warmup.committed);
                e.bool(warmup.reached_target);
                e.u64(*requests_at_warmup);
            }
            Phase::Sample { k, sub, acc } => {
                e.u8(3);
                e.len(*k);
                match sub {
                    SampleSub::Forward { window } => {
                        e.u8(0);
                        window.encode_snap(e);
                    }
                    SampleSub::Warm { window } => {
                        e.u8(1);
                        window.encode_snap(e);
                    }
                    SampleSub::Measure { window, requests_at_start } => {
                        e.u8(2);
                        window.encode_snap(e);
                        e.u64(*requests_at_start);
                    }
                }
                acc.encode_snap(e);
            }
            Phase::WindowPar { next_k, forward, acc, pending } => {
                e.u8(4);
                e.len(*next_k);
                match forward {
                    Some(w) => {
                        e.bool(true);
                        w.encode_snap(e);
                    }
                    None => e.bool(false),
                }
                acc.encode_snap(e);
                e.len(pending.len());
                for (k, snap) in pending {
                    e.len(*k);
                    e.bytes(snap);
                }
            }
        }
    }

    pub(crate) fn decode_snap(d: &mut Dec<'_>) -> Result<Self, SnapError> {
        match d.u8()? {
            0 => Ok(Phase::PreWarm { cycles_done: d.u64()? }),
            1 => Ok(Phase::Warmup { window: WatchedWindow::decode_snap(d)? }),
            2 => {
                let window = WatchedWindow::decode_snap(d)?;
                let warmup = WindowOutcome {
                    cycles: d.u64()?,
                    committed: d.u64()?,
                    reached_target: d.bool()?,
                };
                let requests_at_warmup = d.u64()?;
                Ok(Phase::Measure { window, warmup, requests_at_warmup })
            }
            3 => {
                let k = d.len()?;
                let sub = match d.u8()? {
                    0 => SampleSub::Forward { window: WatchedWindow::decode_snap(d)? },
                    1 => SampleSub::Warm { window: WatchedWindow::decode_snap(d)? },
                    2 => SampleSub::Measure {
                        window: WatchedWindow::decode_snap(d)?,
                        requests_at_start: d.u64()?,
                    },
                    t => return Err(SnapError::BadTag(t)),
                };
                let acc = Box::new(SampleAcc::decode_snap(d)?);
                Ok(Phase::Sample { k, sub, acc })
            }
            4 => {
                let next_k = d.len()?;
                let forward = if d.bool()? {
                    Some(WatchedWindow::decode_snap(d)?)
                } else {
                    None
                };
                let acc = Box::new(SampleAcc::decode_snap(d)?);
                let mut pending = Vec::new();
                for _ in 0..d.len()? {
                    let k = d.len()?;
                    pending.push((k, Arc::new(d.bytes()?)));
                }
                Ok(Phase::WindowPar { next_k, forward, acc, pending })
            }
            t => Err(SnapError::BadTag(t)),
        }
    }
}

/// Instruction target of sampling window `k`: the measurement budget is
/// split evenly, with the remainder folded into the last window so the
/// targets always sum to exactly `measure_instr`.
pub(crate) fn window_target(cfg: &RunConfig, k: usize) -> u64 {
    let n = cfg.sample_windows as u64;
    let base = cfg.measure_instr / n;
    if k as u64 + 1 == n {
        cfg.measure_instr - base * (n - 1)
    } else {
        base
    }
}

/// Instructions the warming strand fast-forwards functionally to reach
/// boundary `k` in window-parallel mode. Boundary 0 sits one
/// `sample_period` past the warmup reset, exactly like the sequential
/// schedule; each later span additionally re-covers (functionally) the
/// `Warm + Measure` instructions its predecessor window executes in detail
/// off-strand, so measured windows remain disjoint spans of the dynamic
/// instruction stream and the inter-window spacing matches the sequential
/// sampler's — the CLT independence argument is unchanged.
pub(crate) fn forward_span(cfg: &RunConfig, k: usize) -> u64 {
    if k == 0 {
        cfg.sample_period
    } else {
        cfg.sample_warmup_instr + window_target(cfg, k - 1) + cfg.sample_period
    }
}

/// Sums the request meters.
pub(crate) fn meter_total(meters: &[Arc<AtomicU64>]) -> u64 {
    meters.iter().map(|m| m.load(Ordering::Relaxed)).sum()
}

/// Wall-clock split of one sampled run's phases, accumulated while the run
/// executes and published through [`record_telemetry`]. Purely diagnostic:
/// nothing here feeds back into simulated state or emitted results.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WindowTimers {
    /// Seconds spent fast-forwarding functionally (the warming strand).
    pub(crate) forward_secs: f64,
    /// Seconds spent in detailed re-warm spans.
    pub(crate) warm_secs: f64,
    /// Seconds spent in detailed measurement windows.
    pub(crate) measure_secs: f64,
    /// Seconds the warming strand blocked joining a not-yet-finished
    /// window worker (always `0` sequentially).
    pub(crate) fold_wait_secs: f64,
}

/// Per-unit wall-clock telemetry of a sampled run: where the time went,
/// split into functional fast-forward, detailed re-warm, detailed
/// measurement, and fold-wait (the warming strand blocking on an
/// unfinished window worker). The campaign layer drains these after each
/// experiment and writes them next to its checkpoints — deliberately
/// *outside* the results tree, which must stay byte-identical across
/// `jobs` values and re-runs.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseTelemetry {
    /// The run's unit name (the `+`-joined benchmark names).
    pub unit: String,
    /// Measurement windows the run completed.
    pub windows: usize,
    /// Seconds spent fast-forwarding functionally.
    pub forward_secs: f64,
    /// Seconds spent in detailed re-warm spans.
    pub warm_secs: f64,
    /// Seconds spent in detailed measurement windows.
    pub measure_secs: f64,
    /// Seconds the warming strand blocked waiting to fold a window.
    pub fold_wait_secs: f64,
}

static TELEMETRY: Mutex<Vec<PhaseTelemetry>> = Mutex::new(Vec::new());

/// Publishes one run's phase telemetry to the process-wide collector.
pub fn record_telemetry(rec: PhaseTelemetry) {
    if let Ok(mut v) = TELEMETRY.lock() {
        v.push(rec);
    }
}

/// Drains every telemetry record published since the last drain. The
/// campaign layer calls this after each experiment; a process that never
/// drains simply accumulates a bounded-by-runs vector.
pub fn drain_telemetry() -> Vec<PhaseTelemetry> {
    TELEMETRY.lock().map(|mut v| std::mem::take(&mut *v)).unwrap_or_default()
}

/// Everything a window worker needs to rebuild, restore and run one
/// detailed excursion, plus the checkpoint hooks of the warming strand.
/// All references outlive the executor's thread scope.
#[derive(Clone, Copy)]
pub(crate) struct WindowParCtx<'env> {
    /// The run's effective configuration.
    pub(crate) cfg: &'env RunConfig,
    /// Global core ids of the measured worker cores.
    pub(crate) worker_cores: &'env [usize],
    /// Global core ids of the polluter cores.
    pub(crate) polluter_cores: &'env [usize],
    /// Builds a chip with every thread attached (polluters then workers,
    /// the restore-path attach order) and returns it with its request
    /// meters, ready for `restore_snap`.
    pub(crate) build_worker: &'env (dyn Fn() -> (Chip, Vec<Arc<AtomicU64>>) + Sync),
    /// Saves a checkpoint envelope for the warming strand (no-op when
    /// checkpointing is not installed).
    pub(crate) save: &'env dyn Fn(&Chip, &Phase),
    /// The installed checkpoint control, if any.
    pub(crate) ckpt: Option<&'env crate::checkpoint::CheckpointCtl>,
    /// Cycle-budget granularity between checkpoint opportunities.
    pub(crate) step_budget: u64,
}

type Pool<'scope> =
    VecDeque<(usize, std::thread::ScopedJoinHandle<'scope, Result<WindowHarvest, HarnessError>>)>;
type Pending = VecDeque<(usize, Arc<Vec<u8>>)>;

/// Restores `snap` into a freshly built chip and runs window `k`'s
/// detailed `Warm→Measure` excursion to completion, returning its harvest.
///
/// This is the worker unit of the window-parallel sampler — and also the
/// inline path at `jobs == 1`, which is what makes the two byte-identical
/// by construction.
pub(crate) fn run_window_unit(
    cfg: &RunConfig,
    k: usize,
    snap: &[u8],
    build_worker: &(dyn Fn() -> (Chip, Vec<Arc<AtomicU64>>) + Sync),
    worker_cores: &[usize],
    polluter_cores: &[usize],
) -> Result<WindowHarvest, HarnessError> {
    let (mut chip, meters) = build_worker();
    let mut d = Dec::new(snap);
    if let Err(e) = chip.restore_snap(&mut d).and_then(|()| d.finish()) {
        // Structurally impossible in a healthy process — the harness
        // encoded these bytes moments (or one resumed run) earlier — so
        // surface it loudly instead of degrading.
        return Err(HarnessError::WindowHandoff { window: k, detail: format!("{e:?}") });
    }
    let snap_cycle = chip.cycle();
    let snap_skipped = chip.skipped_cycles();
    // The snapshot was taken mid-fast-forward, so the restored cores are
    // functional; drop into detail exactly as the sequential sampler does
    // at a forward-span completion.
    chip.set_fidelity(Fidelity::Detailed);
    let mut forward_truncated = false;
    let mut warm_secs = 0.0;
    if cfg.sample_warmup_instr > 0 {
        let t0 = Instant::now();
        let out = chip
            .run_until_committed_watched(
                worker_cores,
                cfg.sample_warmup_instr,
                cfg.max_cycles,
                cfg.watchdog_grace,
            )
            .map_err(|diag| HarnessError::Stalled {
                core: diag.core,
                cycles_without_commit: diag.cycles_without_commit,
                window: "sample-warmup",
            })?;
        warm_secs = t0.elapsed().as_secs_f64();
        if !out.reached_target {
            forward_truncated = true;
        }
    }
    chip.reset_stats();
    let requests_at_start = meter_total(&meters);
    let t0 = Instant::now();
    let out = chip
        .run_until_committed_watched(
            worker_cores,
            window_target(cfg, k),
            cfg.max_cycles,
            cfg.watchdog_grace,
        )
        .map_err(|diag| HarnessError::Stalled {
            core: diag.core,
            cycles_without_commit: diag.cycles_without_commit,
            window: "sample-measure",
        })?;
    let measure_secs = t0.elapsed().as_secs_f64();
    let window_requests = meter_total(&meters) - requests_at_start;
    let mut h = WindowHarvest::collect(&chip, worker_cores, polluter_cores, &out, window_requests);
    h.forward_truncated = forward_truncated;
    h.measure_truncated = !out.reached_target;
    h.extra_cycles = chip.cycle() - snap_cycle;
    h.extra_skipped = chip.skipped_cycles() - snap_skipped;
    h.warm_secs = warm_secs;
    h.measure_secs = measure_secs;
    Ok(h)
}

/// Joins the oldest in-flight window and folds its harvest — the *only*
/// fold site in threaded mode, which is what pins the fold order to
/// window-index order regardless of which worker finishes first.
fn fold_oldest(
    pool: &mut Pool<'_>,
    pending: &mut Pending,
    acc: &mut SampleAcc,
    timers: &mut WindowTimers,
) -> Result<(), HarnessError> {
    let Some((k, handle)) = pool.pop_front() else {
        return Ok(());
    };
    let t0 = Instant::now();
    let h = match handle.join() {
        Ok(r) => r?,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    timers.fold_wait_secs += t0.elapsed().as_secs_f64();
    timers.warm_secs += h.warm_secs;
    timers.measure_secs += h.measure_secs;
    debug_assert_eq!(pending.front().map(|p| p.0), Some(k));
    pending.pop_front();
    acc.fold(h);
    Ok(())
}

/// Dispatches window `k` (already recorded in `pending`): inline at an
/// effective budget of one, otherwise onto a scoped worker thread, folding
/// the oldest in-flight window first if the in-flight budget is full.
#[allow(clippy::too_many_arguments)]
fn dispatch<'scope, 'env: 'scope>(
    s: &'scope std::thread::Scope<'scope, 'env>,
    ctx: WindowParCtx<'env>,
    budget: usize,
    k: usize,
    snap: Arc<Vec<u8>>,
    pool: &mut Pool<'scope>,
    pending: &mut Pending,
    acc: &mut SampleAcc,
    timers: &mut WindowTimers,
) -> Result<(), HarnessError> {
    if budget <= 1 {
        let h = run_window_unit(
            ctx.cfg,
            k,
            &snap,
            ctx.build_worker,
            ctx.worker_cores,
            ctx.polluter_cores,
        )?;
        timers.warm_secs += h.warm_secs;
        timers.measure_secs += h.measure_secs;
        debug_assert_eq!(pending.front().map(|p| p.0), Some(k));
        pending.pop_front();
        acc.fold(h);
        return Ok(());
    }
    while pool.len() >= budget {
        fold_oldest(pool, pending, acc, timers)?;
    }
    let handle = s.spawn(move || {
        run_window_unit(
            ctx.cfg,
            k,
            &snap,
            ctx.build_worker,
            ctx.worker_cores,
            ctx.polluter_cores,
        )
    });
    pool.push_back((k, handle));
    Ok(())
}

/// Stop/cadence checkpoint opportunity for the warming strand. The phase
/// (including every pending snapshot) is only materialized when a save is
/// actually due.
#[allow(clippy::too_many_arguments)]
fn check_boundary(
    chip: &Chip,
    ctx: WindowParCtx<'_>,
    next_k: usize,
    forward: &Option<WatchedWindow>,
    acc: &SampleAcc,
    pending: &Pending,
    last_ckpt: &mut u64,
) -> Result<(), HarnessError> {
    let Some(ctl) = ctx.ckpt else {
        return Ok(());
    };
    let now = chip.cycle();
    let stop = ctl.stop.load(Ordering::SeqCst)
        || ctl.interrupt_after.is_some_and(|c| now >= c);
    let cadence_due =
        ctl.cadence_cycles > 0 && now >= last_ckpt.saturating_add(ctl.cadence_cycles);
    if !stop && !cadence_due {
        return Ok(());
    }
    let phase = Phase::WindowPar {
        next_k,
        forward: forward.clone(),
        acc: Box::new(acc.clone()),
        pending: pending.iter().cloned().collect(),
    };
    (ctx.save)(chip, &phase);
    if stop {
        return Err(HarnessError::Interrupted);
    }
    *last_ckpt = now;
    Ok(())
}

/// Drives window-parallel sampling to completion: the warming strand
/// fast-forwards functionally from boundary to boundary, snapshotting and
/// dispatching each window to the bounded worker pool, then drains the
/// pool. Returns the full accumulator (every window folded, in order).
///
/// On entry the state may come fresh from warmup (`next_k == 0`, empty
/// `pending`) or from a restored [`Phase::WindowPar`] checkpoint, in which
/// case every pending window is simply re-dispatched — each is a pure
/// function of its snapshot, so re-running windows whose results died with
/// the interrupted process reproduces the same bytes.
#[allow(clippy::too_many_arguments)] // the four state args mirror Phase::WindowPar's fields
pub(crate) fn run_window_par(
    chip: &mut Chip,
    next_k: usize,
    forward: Option<WatchedWindow>,
    acc: Box<SampleAcc>,
    pending: Vec<(usize, Arc<Vec<u8>>)>,
    ctx: WindowParCtx<'_>,
    last_ckpt: &mut u64,
    timers: &mut WindowTimers,
) -> Result<Box<SampleAcc>, HarnessError> {
    let n = ctx.cfg.sample_windows;
    let budget = ctx.cfg.sample_inflight.min(ctx.cfg.jobs).max(1);
    let mut next_k = next_k;
    let mut forward = forward;
    let mut acc = acc;
    let mut pending: Pending = pending.into();
    std::thread::scope(|s| -> Result<(), HarnessError> {
        let mut pool: Pool<'_> = VecDeque::new();
        // Re-dispatch windows restored from a checkpoint, oldest first
        // (fresh entries start with an empty pending list). A restore may
        // carry more pending windows than this process's budget — e.g. a
        // `jobs 4` run resumed at `jobs 1` — and `dispatch` simply folds
        // as it admits.
        let restored: Vec<(usize, Arc<Vec<u8>>)> = pending.iter().cloned().collect();
        for (k, snap) in restored {
            dispatch(s, ctx, budget, k, snap, &mut pool, &mut pending, &mut acc, timers)?;
        }
        loop {
            if let Some(mut w) = forward.take() {
                let t0 = Instant::now();
                let stepped = chip.step_watched(&mut w, ctx.step_budget).map_err(|d| {
                    HarnessError::Stalled {
                        core: d.core,
                        cycles_without_commit: d.cycles_without_commit,
                        window: "sample-forward",
                    }
                })?;
                timers.forward_secs += t0.elapsed().as_secs_f64();
                match stepped {
                    Some(out) => {
                        if !out.reached_target {
                            acc.forward_truncated = true;
                        }
                        // Boundary `next_k` reached: snapshot the chip,
                        // hand the window off, and immediately resume
                        // warming toward the next boundary.
                        let mut e = Enc::new();
                        chip.encode_snap(&mut e);
                        let snap = Arc::new(e.buf);
                        pending.push_back((next_k, Arc::clone(&snap)));
                        dispatch(
                            s, ctx, budget, next_k, snap, &mut pool, &mut pending, &mut acc,
                            timers,
                        )?;
                        next_k += 1;
                        forward = if next_k < n {
                            Some(chip.begin_watched(
                                ctx.worker_cores,
                                forward_span(ctx.cfg, next_k),
                                ctx.cfg.max_cycles,
                                ctx.cfg.watchdog_grace,
                            ))
                        } else {
                            None
                        };
                    }
                    None => forward = Some(w),
                }
                check_boundary(chip, ctx, next_k, &forward, &acc, &pending, last_ckpt)?;
            } else {
                // Every boundary dispatched: drain the pool in order,
                // honouring stop requests between folds.
                if pool.is_empty() && pending.is_empty() {
                    return Ok(());
                }
                fold_oldest(&mut pool, &mut pending, &mut acc, timers)?;
                check_boundary(chip, ctx, next_k, &forward, &acc, &pending, last_ckpt)?;
            }
        }
    })?;
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_targets_sum_to_the_measurement_budget() {
        let cfg = RunConfig {
            sample_windows: 7,
            sample_period: 1_000,
            measure_instr: 100_003,
            ..RunConfig::default()
        };
        let total: u64 = (0..7).map(|k| window_target(&cfg, k)).sum();
        assert_eq!(total, 100_003);
        assert!(window_target(&cfg, 6) >= window_target(&cfg, 0));
    }

    #[test]
    fn forward_spans_recover_the_sequential_spacing() {
        let cfg = RunConfig {
            sample_windows: 4,
            sample_period: 10_000,
            sample_warmup_instr: 2_000,
            measure_instr: 40_000,
            ..RunConfig::default()
        };
        assert_eq!(forward_span(&cfg, 0), 10_000);
        // Later spans functionally re-cover the predecessor window's
        // detailed Warm + Measure instructions plus one period.
        assert_eq!(forward_span(&cfg, 1), 2_000 + 10_000 + 10_000);
    }

    #[test]
    fn telemetry_collector_drains_what_was_recorded() {
        // Drain whatever other tests left behind first.
        let _ = drain_telemetry();
        record_telemetry(PhaseTelemetry {
            unit: "sampling-test-unit".into(),
            windows: 3,
            forward_secs: 0.5,
            warm_secs: 0.1,
            measure_secs: 0.2,
            fold_wait_secs: 0.0,
        });
        let drained = drain_telemetry();
        assert!(drained.iter().any(|t| t.unit == "sampling-test-unit" && t.windows == 3));
        assert!(drain_telemetry().iter().all(|t| t.unit != "sampling-test-unit"));
    }

    #[test]
    fn window_par_phase_round_trips_through_the_codec() {
        let acc = SampleAcc::new(
            WindowOutcome { cycles: 10, committed: 20, reached_target: true },
            7,
        );
        let pending = vec![
            (2usize, Arc::new(vec![1u8, 2, 3])),
            (3usize, Arc::new(vec![9u8; 40])),
        ];
        let phase = Phase::WindowPar { next_k: 4, forward: None, acc: Box::new(acc), pending };
        let mut e = Enc::new();
        phase.encode_snap(&mut e);
        let mut d = Dec::new(&e.buf);
        let back = Phase::decode_snap(&mut d).expect("decode");
        d.finish().expect("no trailing bytes");
        match back {
            Phase::WindowPar { next_k, forward, acc, pending } => {
                assert_eq!(next_k, 4);
                assert!(forward.is_none());
                assert_eq!(acc.requests_at_warmup, 7);
                assert_eq!(acc.extra_cycles, 0);
                assert_eq!(pending.len(), 2);
                assert_eq!(pending[0], (2, Arc::new(vec![1u8, 2, 3])));
                assert_eq!(*pending[1].1, vec![9u8; 40]);
            }
            _ => panic!("wrong phase tag"),
        }
    }
}
