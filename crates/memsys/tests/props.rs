//! Property-based tests of the cache and memory-system invariants.

use cs_memsys::cache::{Cache, LineMeta};
use cs_memsys::{BandwidthRegulator, MemSysConfig, MemorySystem, PrefetchConfig};
use cs_trace::snap::{Dec, Enc};
use cs_trace::Privilege;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A cache never holds more lines than its capacity, whatever the
    /// fill sequence, and a just-filled line is always resident.
    #[test]
    fn capacity_and_residency(
        sets in 1usize..64,
        assoc in 1usize..8,
        lines in proptest::collection::vec(0u64..10_000, 1..400),
    ) {
        let mut c = Cache::new(sets, assoc);
        for &line in &lines {
            c.fill(line, LineMeta::clean());
            prop_assert!(c.peek(line).is_some(), "just-filled line must be resident");
            prop_assert!(c.valid_lines() <= c.capacity_lines());
        }
    }

    /// Invalidate really removes, and double-invalidate is a no-op.
    #[test]
    fn invalidate_semantics(lines in proptest::collection::vec(0u64..500, 1..100)) {
        let mut c = Cache::new(16, 4);
        for &line in &lines {
            c.fill(line, LineMeta::clean());
            prop_assert!(c.invalidate(line).is_some());
            prop_assert!(c.peek(line).is_none());
            prop_assert!(c.invalidate(line).is_none());
        }
    }

    /// The memory system's per-level counters stay consistent for any
    /// access sequence: accesses at level N+1 equal misses at level N.
    #[test]
    fn hierarchy_counters_are_consistent(
        addrs in proptest::collection::vec(0u64..(1 << 24), 20..300),
        stores in proptest::collection::vec(any::<bool>(), 20..300),
    ) {
        let cfg = MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
        let mut m = MemorySystem::new(cfg, 2);
        for (i, &addr) in addrs.iter().enumerate() {
            let store = stores[i % stores.len()];
            let core = i % 2;
            m.data_access(core, Privilege::User, addr * 8, store, 0x40_0000, i as u64);
        }
        for core in 0..2 {
            let s = &m.stats().per_core[core];
            let l1_misses = s.l1d.total_accesses() - s.l1d.total_hits();
            // Upgrades re-enter the L2 path without being L1 misses.
            prop_assert_eq!(l1_misses + s.upgrades, s.l2.total_accesses());
            let l2_misses = s.l2.total_accesses() - s.l2.total_hits();
            prop_assert_eq!(l2_misses, s.llc.total_accesses());
        }
    }

    /// Read-write sharing is only ever detected when there are at least
    /// two distinct writers/readers involved — a single-core run must
    /// never report sharing.
    #[test]
    fn no_sharing_on_a_single_core(
        addrs in proptest::collection::vec(0u64..(1 << 20), 20..200),
    ) {
        let mut m = MemorySystem::new(MemSysConfig::default(), 1);
        for (i, &a) in addrs.iter().enumerate() {
            m.data_access(0, Privilege::User, a * 64, i % 3 == 0, 0x40_0000, i as u64);
        }
        prop_assert_eq!(m.stats().per_core[0].rw_shared, [0, 0]);
    }

    /// Snapshotting the full memory system mid-stream — caches, TLBs,
    /// prefetchers, DRAM timers, stats — and restoring into a freshly
    /// built system reproduces the snapshot bytes exactly, and both
    /// systems then answer an identical continuation stream with
    /// identical stats. Prefetching is left ON so the stride tables and
    /// DCU state ride through the snapshot too.
    #[test]
    fn memsys_snapshot_roundtrip_is_byte_identical(
        addrs in proptest::collection::vec(0u64..(1 << 24), 20..300),
        stores in proptest::collection::vec(any::<bool>(), 20..300),
        tail in proptest::collection::vec(0u64..(1 << 24), 10..100),
    ) {
        let mut original = MemorySystem::new(MemSysConfig::default(), 2);
        for (i, &addr) in addrs.iter().enumerate() {
            let store = stores[i % stores.len()];
            original.data_access(i % 2, Privilege::User, addr * 8, store, 0x40_0000, i as u64);
        }

        let mut e = Enc::new();
        original.encode_snap(&mut e);

        let mut restored = MemorySystem::new(MemSysConfig::default(), 2);
        let mut d = Dec::new(&e.buf);
        restored.restore_snap(&mut d).expect("snapshot must decode");
        d.finish().expect("snapshot must be fully consumed");

        let mut e2 = Enc::new();
        restored.encode_snap(&mut e2);
        prop_assert_eq!(&e.buf, &e2.buf, "restore must reproduce the snapshot bytes");

        // Identical continuation on both: privilege flips exercise the
        // kernel/user counter split after restore.
        let base = addrs.len() as u64;
        for (i, &addr) in tail.iter().enumerate() {
            let priv_ = if i % 3 == 0 { Privilege::Kernel } else { Privilege::User };
            for m in [&mut original, &mut restored] {
                m.data_access(i % 2, priv_, addr * 8, i % 5 == 0, 0x40_0000, base + i as u64);
            }
        }
        prop_assert_eq!(original.stats(), restored.stats());
        prop_assert_eq!(original.dram_stats(), restored.dram_stats());
    }

    /// DRAM byte accounting is conserved: total bytes equal 64 times the
    /// number of bursts.
    #[test]
    fn dram_bytes_are_conserved(addrs in proptest::collection::vec(0u64..(1 << 30), 10..200)) {
        let cfg = MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
        let mut m = MemorySystem::new(cfg, 1);
        for (i, &a) in addrs.iter().enumerate() {
            m.data_access(0, Privilege::User, a * 64, false, 0, i as u64);
        }
        let d = m.dram_stats();
        prop_assert_eq!(d.bytes, 64 * (d.reads + d.writes));
    }

    /// Under a full disjoint way partition, every masked fill lands inside
    /// its tenant's ways and never evicts the other tenant's lines —
    /// whatever the interleaving.
    #[test]
    fn way_partition_never_evicts_across_tenants(
        sets in 1usize..16,
        picks in proptest::collection::vec((any::<bool>(), 0u64..2_000), 50..400),
    ) {
        check_way_partition(sets, &picks);
    }

    /// The token-bucket regulator never admits more than one budget of
    /// bytes into any accounting window, whatever the admission schedule.
    #[test]
    fn throttle_never_exceeds_the_window_budget(
        window in 100u64..10_000,
        budgets in proptest::collection::vec(64u64..4_096, 1..4),
        steps in proptest::collection::vec((0usize..4, 0u64..500), 20..300),
    ) {
        check_throttle_budget(window, &budgets, &steps);
    }
}

/// Drives a two-tenant cache with disjoint way masks (0x0F / 0xF0) and
/// asserts, after every masked fill, that the line landed inside its
/// tenant's ways, that any eviction hit the filler's own tenant, and that
/// per-tenant occupancy accounting partitions exactly. Tenants use
/// disjoint address spaces (even/odd lines) so an in-place refresh —
/// which hardware never partitions — cannot cross tenants either.
fn check_way_partition(sets: usize, picks: &[(bool, u64)]) {
    const ASSOC: usize = 8;
    const MASKS: [u64; 2] = [0x0F, 0xF0];
    let mut c = Cache::new(sets, ASSOC);
    for &(second, line) in picks {
        let tenant = usize::from(second);
        let line = line * 2 + tenant as u64;
        let meta = LineMeta { tenant: tenant as u8, ..LineMeta::clean() };
        if let Some(v) = c.fill_masked(line, meta, MASKS[tenant]) {
            assert_eq!(
                v.meta.tenant, tenant as u8,
                "tenant {tenant} evicted a line of tenant {}", v.meta.tenant
            );
        }
        let (way, meta) = c.probe(line).expect("just-filled line must be resident");
        assert_eq!(meta.tenant, tenant as u8);
        assert!(
            MASKS[tenant] & (1u64 << (way % ASSOC)) != 0,
            "tenant {tenant} allocated way {} outside mask {:#x}", way % ASSOC, MASKS[tenant]
        );
        assert_eq!(c.tenant_lines(0) + c.tenant_lines(1), c.valid_lines());
        assert!(c.tenant_lines(tenant as u8) <= sets * ASSOC / 2);
    }
}

/// Replays an admission schedule through the regulator and asserts that
/// each charge's landing window (`(now + delay) / window`) accumulates at
/// most `budgets[tenant]` bytes, that charges never land in the past, and
/// that tenants beyond the budget table are never delayed.
fn check_throttle_budget(window: u64, budgets: &[u64], steps: &[(usize, u64)]) {
    let mut reg = BandwidthRegulator::new(window, budgets.to_vec());
    let mut now = 0u64;
    let mut landed = std::collections::HashMap::new();
    for &(tenant, advance) in steps {
        now += advance;
        let delay = reg.admit(tenant, 64, now);
        if tenant >= budgets.len() {
            assert_eq!(delay, 0, "unbudgeted tenants are never delayed");
            continue;
        }
        let win = (now + delay) / window;
        assert!(win >= now / window, "a charge can never land in the past");
        let used = landed.entry((tenant, win)).or_insert(0u64);
        *used += 64;
        assert!(
            *used <= budgets[tenant],
            "tenant {tenant} window {win} holds {used} bytes against a budget of {}",
            budgets[tenant]
        );
    }
}

/// Fixed-input smoke twins of the two QoS properties: a saturating
/// interleaving that forces evictions in every set, and an admission
/// schedule that overruns one window and spills into the next.
#[test]
fn qos_property_smoke_cases() {
    let picks: Vec<(bool, u64)> =
        (0..300).map(|i| (i % 3 == 0, (i * 7) % 97)).collect();
    check_way_partition(4, &picks);

    let steps: Vec<(usize, u64)> =
        (0..200).map(|i| (i % 3, if i % 5 == 0 { 40 } else { 0 })).collect();
    check_throttle_budget(256, &[64, 128], &steps);
}
