//! Hardware prefetcher models.
//!
//! Models the three prefetchers the paper toggles in §4.3 / Figure 5, using
//! the names from the processor documentation and BIOS:
//!
//! - **adjacent-line**: on an L2 miss, fetch the other half of the 128-byte
//!   aligned pair;
//! - **HW prefetcher** (L2 stride/stream): a small table that detects
//!   constant-stride access streams *within a 4 KB page* (as Intel's MLC
//!   streamer does) out of the L1-D miss stream and runs ahead of them;
//! - **DCU streamer**: L1-D next-line prefetch on ascending misses.
//!
//! Plus the L1-I **next-line** instruction prefetcher the paper mentions in
//! §4.1 ("instruction-caches and associated next-line prefetchers").
//!
//! The prefetchers only *decide* which lines to fetch; the fills (and the
//! pollution and bandwidth they cause) are executed by
//! [`crate::system::MemorySystem`], synchronously, inside the demand
//! access that triggered them. There is no in-flight prefetch queue and
//! no timer: a prefetcher never acts between demand accesses, which is
//! what makes the chip's event-driven cycle skipping safe without a
//! prefetch entry in [`crate::system::MemorySystem::next_event_cycle`].
//! A future decoupled prefetch queue (issue now, fill N cycles later)
//! must surface its next fill time there.

/// Companion line of the 128-byte aligned pair (adjacent-line prefetcher).
#[inline]
pub fn adjacent_line(line: u64) -> u64 {
    line ^ 1
}

/// Next sequential line (DCU streamer, L1-I next-line prefetcher).
#[inline]
pub fn next_line(line: u64) -> u64 {
    line + 1
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    page_tag: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Page-keyed stride/stream detector (the "HW prefetcher" at the L2).
///
/// Sixteen direct-mapped entries track the last line accessed per 4 KB
/// page. Two consecutive identical non-zero strides within a page arm the
/// entry, after which each access emits `degree` prefetches running ahead
/// of the stream. Many concurrent independent streams (more pages in
/// flight than entries, as a media server walking a different file offset
/// per client produces) thrash the table and keep it silent — which is
/// exactly the ineffectiveness the paper reports for scale-out workloads.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    entries: Vec<StreamEntry>,
    degree: u32,
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(16, 2)
    }
}

impl StridePrefetcher {
    /// Creates a prefetcher with `entries` table slots issuing `degree`
    /// prefetches ahead once armed.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `degree` is zero.
    pub fn new(entries: usize, degree: u32) -> Self {
        assert!(entries > 0 && degree > 0, "stride prefetcher needs entries and degree");
        Self { entries: vec![StreamEntry::default(); entries], degree }
    }

    /// Observes a demand access to `line` (the L1-D miss stream; `_pc` is
    /// accepted for signature stability but streams are detected by page)
    /// and appends prefetch candidates to `out`.
    pub fn on_access(&mut self, _pc: u64, line: u64, out: &mut Vec<u64>) {
        // line = addr >> 6, so page = line >> 6 is the 4 KB page.
        let page = line >> 6;
        let idx = (page as usize) % self.entries.len();
        let e = &mut self.entries[idx];
        if e.valid && e.page_tag == page {
            let delta = line as i64 - e.last_line as i64;
            if delta != 0 && delta == e.stride {
                e.confidence = (e.confidence + 1).min(4);
            } else {
                e.stride = delta;
                e.confidence = u8::from(delta != 0);
            }
            e.last_line = line;
            if e.confidence >= 2 {
                for k in 1..=self.degree as i64 {
                    let target = line as i64 + e.stride * k;
                    if target >= 0 {
                        out.push(target as u64);
                    }
                }
            }
        } else {
            *e = StreamEntry { page_tag: page, last_line: line, stride: 0, confidence: 0, valid: true };
        }
    }

    /// Serializes the stream table into `e` (the `degree` is configuration
    /// and is not serialized).
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.len(self.entries.len());
        for s in &self.entries {
            e.u64(s.page_tag);
            e.u64(s.last_line);
            e.i64(s.stride);
            e.u8(s.confidence);
            e.bool(s.valid);
        }
    }

    /// Restores a table written by [`StridePrefetcher::encode_snap`]; the
    /// prefetcher must have the same number of entries.
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        use cs_trace::snap::SnapError;
        let n = d.len()?;
        if n != self.entries.len() {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {n} stride entries, prefetcher has {}",
                self.entries.len()
            )));
        }
        for s in &mut self.entries {
            s.page_tag = d.u64()?;
            s.last_line = d.u64()?;
            s.stride = d.i64()?;
            s.confidence = d.u8()?;
            s.valid = d.bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_line_pairs() {
        assert_eq!(adjacent_line(0), 1);
        assert_eq!(adjacent_line(1), 0);
        assert_eq!(adjacent_line(7), 6);
        assert_eq!(next_line(9), 10);
    }

    #[test]
    fn constant_stride_arms_after_two_deltas() {
        let mut p = StridePrefetcher::default();
        let mut out = Vec::new();
        // Sequential lines within one page, arbitrary (distinct) PCs.
        for i in 0..5u64 {
            out.clear();
            p.on_access(0x40_0000 + i * 4, 64 * 100 + i, &mut out);
        }
        assert_eq!(out, vec![64 * 100 + 5, 64 * 100 + 6]);
    }

    #[test]
    fn streams_are_detected_across_distinct_pcs() {
        // The defining property of a page-keyed streamer: a loop whose
        // loads come from different instructions still trains.
        let mut p = StridePrefetcher::default();
        let mut out = Vec::new();
        for i in 0..8u64 {
            p.on_access(0x1000 + i * 400, 64 * 7 + i * 2, &mut out);
        }
        assert!(!out.is_empty(), "page-keyed streamer must arm");
    }

    #[test]
    fn random_accesses_never_arm() {
        let mut p = StridePrefetcher::default();
        let mut out = Vec::new();
        for line in [5u64, 900_000, 17_000, 40_000_000, 3_000, 777_777, 123_456_789] {
            p.on_access(0x40_0000, line, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn interleaved_streams_beyond_capacity_thrash() {
        // 64 concurrent streams on pages that collide in the 16-entry
        // table: confidence never survives.
        let mut p = StridePrefetcher::new(16, 2);
        let mut out = Vec::new();
        let mut cursors: Vec<u64> = (0..64).map(|c| c * 16 * 64).collect();
        for step in 0..600 {
            let c = step % cursors.len();
            cursors[c] += 1;
            p.on_access(0x40_0000, cursors[c], &mut out);
        }
        assert!(
            out.len() < 40,
            "thrashed table must issue few prefetches, got {}",
            out.len()
        );
    }

    #[test]
    fn distinct_pages_track_independently() {
        let mut p = StridePrefetcher::new(16, 1);
        let mut out = Vec::new();
        for i in 0..5u64 {
            out.clear();
            p.on_access(0, 64 * 3 + i, &mut out); // page 3
            p.on_access(0, 64 * 4 + i * 2, &mut out); // page 4
        }
        assert_eq!(out.len(), 2, "both streams armed: {out:?}");
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn rejects_zero_entries() {
        let _ = StridePrefetcher::new(0, 2);
    }
}
