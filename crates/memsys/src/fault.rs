//! Deterministic fault injection for the memory system.
//!
//! Production measurement infrastructure has to prove that its failure
//! paths — watchdogs, truncation reporting, retries — actually fire. A
//! [`FaultPlan`] describes a seeded, reproducible perturbation of the
//! memory system: extra latency added to a configurable fraction of DRAM
//! reads, and a configurable fraction of prefetch issues silently dropped.
//! Because the perturbation stream is a pure function of the seed, a
//! faulty run is exactly as replayable as a healthy one, so tests can
//! assert on the precise failure a plan provokes — and future studies can
//! measure metric stability under controlled perturbation.

use serde::{Deserialize, Serialize};

/// A seeded perturbation of the memory system.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per event
/// from a dedicated xorshift stream, so the same plan perturbs the same
/// run identically every time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Extra cycles added to a perturbed DRAM read.
    pub dram_extra_latency: u32,
    /// Fraction of DRAM reads that receive the extra latency.
    pub dram_perturb_rate: f64,
    /// Fraction of prefetch issues that are dropped before touching any
    /// cache state.
    pub prefetch_drop_rate: f64,
    /// Seed of the perturbation stream (independent of the workload seed).
    pub seed: u64,
}

impl FaultPlan {
    /// A mild plan: jitters `rate` of DRAM reads by `extra` cycles.
    pub fn dram_jitter(extra: u32, rate: f64, seed: u64) -> Self {
        Self { dram_extra_latency: extra, dram_perturb_rate: rate, prefetch_drop_rate: 0.0, seed }
    }

    /// A lethal plan: every DRAM read takes effectively forever, which
    /// livelocks any workload that leaves the chip. Used to prove that
    /// the harness watchdog cuts a sick run short.
    pub fn stall(seed: u64) -> Self {
        Self {
            dram_extra_latency: 2_000_000_000,
            dram_perturb_rate: 1.0,
            prefetch_drop_rate: 0.0,
            seed,
        }
    }

    /// Drops `rate` of prefetch issues.
    pub fn prefetch_drops(rate: f64, seed: u64) -> Self {
        Self { dram_extra_latency: 0, dram_perturb_rate: 0.0, prefetch_drop_rate: rate, seed }
    }
}

/// Counts of faults actually injected, for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// DRAM reads that received extra latency.
    pub perturbed_dram_reads: u64,
    /// Prefetch issues that were dropped.
    pub dropped_prefetches: u64,
}

/// Runtime state of an active plan: the plan plus its random stream.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: u64,
    counters: FaultCounters,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        // splitmix-style scramble so seed 0 still produces a live stream.
        let rng = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Self { plan, rng, counters: FaultCounters::default() }
    }

    /// Uniform draw in [0, 1) from a dedicated xorshift64 stream.
    fn roll(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Extra latency for this DRAM read (0 when unperturbed).
    pub(crate) fn perturb_dram(&mut self) -> u32 {
        if self.plan.dram_perturb_rate > 0.0 && self.roll() < self.plan.dram_perturb_rate {
            self.counters.perturbed_dram_reads += 1;
            self.plan.dram_extra_latency
        } else {
            0
        }
    }

    /// Whether this prefetch issue is dropped.
    pub(crate) fn drop_prefetch(&mut self) -> bool {
        if self.plan.prefetch_drop_rate > 0.0 && self.roll() < self.plan.prefetch_drop_rate {
            self.counters.dropped_prefetches += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Serializes the perturbation cursor (RNG word) and injected-fault
    /// counters into `e`; the plan itself is configuration.
    pub(crate) fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.u64(self.rng);
        e.u64(self.counters.perturbed_dram_reads);
        e.u64(self.counters.dropped_prefetches);
    }

    /// Restores the cursor written by [`FaultState::encode_snap`].
    pub(crate) fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        self.rng = d.u64()?;
        self.counters.perturbed_dram_reads = d.u64()?;
        self.counters.dropped_prefetches = d.u64()?;
        Ok(())
    }

    /// Earliest cycle at which the fault plan would act on its own —
    /// `u64::MAX`, always: perturbations are *event-indexed* (one RNG draw
    /// per DRAM read or prefetch issue, inside the access that triggers
    /// them), never scheduled at a wall-clock cycle. Cycle skipping is
    /// therefore transparent to the fault stream: the same accesses draw
    /// the same rolls in the same order whether dead cycles are stepped
    /// or jumped. A future *time-scheduled* fault (e.g. "stall channel 2
    /// at cycle N") must report N here.
    pub(crate) fn next_event_cycle(&self) -> u64 {
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_respected_roughly() {
        let mut s = FaultState::new(FaultPlan::dram_jitter(100, 0.25, 7));
        let hits = (0..10_000).filter(|_| s.perturb_dram() > 0).count();
        assert!((1_800..3_200).contains(&hits), "25% rate drew {hits}/10000");
        assert_eq!(s.counters().perturbed_dram_reads, hits as u64);
    }

    #[test]
    fn zero_rate_never_fires_and_one_always_fires() {
        let mut quiet = FaultState::new(FaultPlan::dram_jitter(100, 0.0, 3));
        assert!((0..1000).all(|_| quiet.perturb_dram() == 0));
        let mut loud = FaultState::new(FaultPlan::stall(3));
        assert!((0..1000).all(|_| loud.perturb_dram() == 2_000_000_000));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultState::new(FaultPlan::prefetch_drops(0.5, 11));
        let mut b = FaultState::new(FaultPlan::prefetch_drops(0.5, 11));
        let xs: Vec<bool> = (0..256).map(|_| a.drop_prefetch()).collect();
        let ys: Vec<bool> = (0..256).map(|_| b.drop_prefetch()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = FaultState::new(FaultPlan::prefetch_drops(0.5, 1));
        let mut b = FaultState::new(FaultPlan::prefetch_drops(0.5, 2));
        let xs: Vec<bool> = (0..256).map(|_| a.drop_prefetch()).collect();
        let ys: Vec<bool> = (0..256).map(|_| b.drop_prefetch()).collect();
        assert_ne!(xs, ys);
    }
}
