//! Memory-system statistics.
//!
//! Hot-path counters are plain struct fields, grouped per core and per
//! level, and classified along the two axes every figure in the paper
//! splits on: instruction vs. data, and application vs. operating system.

use crate::dram::DramStats;
use cs_perf::CounterSet;
use cs_trace::Privilege;
use serde::{Deserialize, Serialize};

/// Classification of a memory access for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessClass {
    /// Instruction fetch, application code.
    InstrUser = 0,
    /// Instruction fetch, kernel code.
    InstrKernel = 1,
    /// Data access, application.
    DataUser = 2,
    /// Data access, kernel.
    DataKernel = 3,
}

impl AccessClass {
    /// Builds the class from the access axes.
    #[inline]
    pub fn new(is_instr: bool, privilege: Privilege) -> Self {
        match (is_instr, privilege.is_kernel()) {
            (true, false) => AccessClass::InstrUser,
            (true, true) => AccessClass::InstrKernel,
            (false, false) => AccessClass::DataUser,
            (false, true) => AccessClass::DataKernel,
        }
    }

    /// Index for stat arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Whether this is an instruction class.
    pub fn is_instr(self) -> bool {
        matches!(self, AccessClass::InstrUser | AccessClass::InstrKernel)
    }

    /// All four classes.
    pub fn all() -> [AccessClass; 4] {
        [
            AccessClass::InstrUser,
            AccessClass::InstrKernel,
            AccessClass::DataUser,
            AccessClass::DataKernel,
        ]
    }
}

/// Accesses and hits at one cache level, split by [`AccessClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Demand accesses per class.
    pub accesses: [u64; 4],
    /// Demand hits per class.
    pub hits: [u64; 4],
}

impl LevelStats {
    /// Records an access and whether it hit.
    #[inline]
    pub fn record(&mut self, class: AccessClass, hit: bool) {
        self.accesses[class.idx()] += 1;
        if hit {
            self.hits[class.idx()] += 1;
        }
    }

    /// Misses per class.
    pub fn misses(&self, class: AccessClass) -> u64 {
        self.accesses[class.idx()] - self.hits[class.idx()]
    }

    /// Total accesses over all classes.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Total hits over all classes.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Overall hit ratio (0 when never accessed).
    pub fn hit_ratio(&self) -> f64 {
        cs_perf::ratio(self.total_hits(), self.total_accesses())
    }

    /// Instruction misses (user + kernel).
    pub fn instr_misses(&self) -> (u64, u64) {
        (self.misses(AccessClass::InstrUser), self.misses(AccessClass::InstrKernel))
    }

    /// Adds every counter of `other` into `self` (per-window aggregation).
    pub fn merge_from(&mut self, other: &LevelStats) {
        for i in 0..4 {
            self.accesses[i] += other.accesses[i];
            self.hits[i] += other.hits[i];
        }
    }

    /// Writes both counter arrays in a fixed order.
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        for &v in &self.accesses {
            e.u64(v);
        }
        for &v in &self.hits {
            e.u64(v);
        }
    }

    /// Inverse of [`LevelStats::encode_snap`].
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        for v in &mut self.accesses {
            *v = d.u64()?;
        }
        for v in &mut self.hits {
            *v = d.u64()?;
        }
        Ok(())
    }
}

/// Prefetcher activity for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetches issued by the adjacent-line prefetcher.
    pub issued_adjacent: u64,
    /// Prefetches issued by the L2 HW stride prefetcher.
    pub issued_stride: u64,
    /// Prefetches issued by the DCU streamer.
    pub issued_dcu: u64,
    /// Prefetches issued by the L1-I next-line prefetcher.
    pub issued_instr: u64,
    /// Demand hits on prefetched lines, at the L1-D.
    pub useful_l1d: u64,
    /// Demand hits on prefetched lines, at the L2.
    pub useful_l2: u64,
    /// Demand hits on prefetched lines, at the L1-I.
    pub useful_l1i: u64,
}

impl PrefetchStats {
    /// Adds every counter of `other` into `self`.
    pub fn merge_from(&mut self, other: &PrefetchStats) {
        self.issued_adjacent += other.issued_adjacent;
        self.issued_stride += other.issued_stride;
        self.issued_dcu += other.issued_dcu;
        self.issued_instr += other.issued_instr;
        self.useful_l1d += other.useful_l1d;
        self.useful_l2 += other.useful_l2;
        self.useful_l1i += other.useful_l1i;
    }
}

/// TLB activity for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// ITLB first-level misses.
    pub itlb_misses: u64,
    /// DTLB first-level misses.
    pub dtlb_misses: u64,
    /// Second-level TLB misses (page walks).
    pub stlb_misses: u64,
    /// Cycles of ITLB-miss stall (enters the §3.1 memory-cycle formula).
    pub itlb_miss_cycles: u64,
    /// Cycles of second-level TLB miss stall (ditto).
    pub stlb_miss_cycles: u64,
}

impl TlbStats {
    /// Adds every counter of `other` into `self`.
    pub fn merge_from(&mut self, other: &TlbStats) {
        self.itlb_misses += other.itlb_misses;
        self.dtlb_misses += other.dtlb_misses;
        self.stlb_misses += other.stlb_misses;
        self.itlb_miss_cycles += other.itlb_miss_cycles;
        self.stlb_miss_cycles += other.stlb_miss_cycles;
    }
}

/// All memory-system statistics attributed to one core.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreMemStats {
    /// L1 instruction cache.
    pub l1i: LevelStats,
    /// L1 data cache.
    pub l1d: LevelStats,
    /// Private L2.
    pub l2: LevelStats,
    /// Shared LLC (accesses by this core).
    pub llc: LevelStats,
    /// LLC *data* references that hit a block most recently written by
    /// another core, split user/kernel (Figure 6 numerator).
    pub rw_shared: [u64; 2],
    /// Ownership upgrades (RFOs for lines already present clean).
    pub upgrades: u64,
    /// Bytes this core moved to/from DRAM (demand fills, prefetch fills and
    /// writebacks it caused), split user/kernel (Figure 7 numerator).
    pub dram_bytes: [u64; 2],
    /// Prefetcher activity.
    pub prefetch: PrefetchStats,
    /// TLB activity.
    pub tlb: TlbStats,
}

impl CoreMemStats {
    /// LLC data references (Figure 6 denominator).
    pub fn llc_data_refs(&self) -> u64 {
        self.llc.accesses[AccessClass::DataUser.idx()]
            + self.llc.accesses[AccessClass::DataKernel.idx()]
    }

    /// Total read-write shared LLC hits.
    pub fn rw_shared_total(&self) -> u64 {
        self.rw_shared[0] + self.rw_shared[1]
    }

    /// Total DRAM bytes attributed to this core.
    pub fn dram_bytes_total(&self) -> u64 {
        self.dram_bytes[0] + self.dram_bytes[1]
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// Used by the sampling driver to fold per-window memory statistics
    /// into the campaign-level accumulator.
    pub fn merge_from(&mut self, other: &CoreMemStats) {
        self.l1i.merge_from(&other.l1i);
        self.l1d.merge_from(&other.l1d);
        self.l2.merge_from(&other.l2);
        self.llc.merge_from(&other.llc);
        self.rw_shared[0] += other.rw_shared[0];
        self.rw_shared[1] += other.rw_shared[1];
        self.upgrades += other.upgrades;
        self.dram_bytes[0] += other.dram_bytes[0];
        self.dram_bytes[1] += other.dram_bytes[1];
        self.prefetch.merge_from(&other.prefetch);
        self.tlb.merge_from(&other.tlb);
    }

    /// Writes every counter in a fixed order (shared with the
    /// [`crate::MemorySystem`] snapshot codec).
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        self.l1i.encode_snap(e);
        self.l1d.encode_snap(e);
        self.l2.encode_snap(e);
        self.llc.encode_snap(e);
        e.u64(self.rw_shared[0]);
        e.u64(self.rw_shared[1]);
        e.u64(self.upgrades);
        e.u64(self.dram_bytes[0]);
        e.u64(self.dram_bytes[1]);
        e.u64(self.prefetch.issued_adjacent);
        e.u64(self.prefetch.issued_stride);
        e.u64(self.prefetch.issued_dcu);
        e.u64(self.prefetch.issued_instr);
        e.u64(self.prefetch.useful_l1d);
        e.u64(self.prefetch.useful_l2);
        e.u64(self.prefetch.useful_l1i);
        e.u64(self.tlb.itlb_misses);
        e.u64(self.tlb.dtlb_misses);
        e.u64(self.tlb.stlb_misses);
        e.u64(self.tlb.itlb_miss_cycles);
        e.u64(self.tlb.stlb_miss_cycles);
    }

    /// Inverse of [`CoreMemStats::encode_snap`].
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        self.l1i.restore_snap(d)?;
        self.l1d.restore_snap(d)?;
        self.l2.restore_snap(d)?;
        self.llc.restore_snap(d)?;
        self.rw_shared[0] = d.u64()?;
        self.rw_shared[1] = d.u64()?;
        self.upgrades = d.u64()?;
        self.dram_bytes[0] = d.u64()?;
        self.dram_bytes[1] = d.u64()?;
        self.prefetch.issued_adjacent = d.u64()?;
        self.prefetch.issued_stride = d.u64()?;
        self.prefetch.issued_dcu = d.u64()?;
        self.prefetch.issued_instr = d.u64()?;
        self.prefetch.useful_l1d = d.u64()?;
        self.prefetch.useful_l2 = d.u64()?;
        self.prefetch.useful_l1i = d.u64()?;
        self.tlb.itlb_misses = d.u64()?;
        self.tlb.dtlb_misses = d.u64()?;
        self.tlb.stlb_misses = d.u64()?;
        self.tlb.itlb_miss_cycles = d.u64()?;
        self.tlb.stlb_miss_cycles = d.u64()?;
        Ok(())
    }
}

/// Statistics for the whole memory system.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Per-core statistics (indexed by global core id).
    pub per_core: Vec<CoreMemStats>,
    /// DRAM subsystem totals.
    pub dram: DramStats,
}

impl MemStats {
    /// Exports every counter into a flat [`CounterSet`] (used by the
    /// determinism tests and JSON output).
    pub fn to_counters(&self) -> CounterSet {
        let mut c = CounterSet::new();
        for (i, core) in self.per_core.iter().enumerate() {
            let p = |name: &str| format!("core{i}.{name}");
            for (lname, level) in [
                ("l1i", &core.l1i),
                ("l1d", &core.l1d),
                ("l2", &core.l2),
                ("llc", &core.llc),
            ] {
                for class in AccessClass::all() {
                    c.set(
                        p(&format!("{lname}.acc.{}", class.idx())),
                        level.accesses[class.idx()],
                    );
                    c.set(p(&format!("{lname}.hit.{}", class.idx())), level.hits[class.idx()]);
                }
            }
            c.set(p("rw_shared.user"), core.rw_shared[0]);
            c.set(p("rw_shared.kernel"), core.rw_shared[1]);
            c.set(p("upgrades"), core.upgrades);
            c.set(p("dram_bytes.user"), core.dram_bytes[0]);
            c.set(p("dram_bytes.kernel"), core.dram_bytes[1]);
            c.set(p("pf.adj"), core.prefetch.issued_adjacent);
            c.set(p("pf.stride"), core.prefetch.issued_stride);
            c.set(p("pf.dcu"), core.prefetch.issued_dcu);
            c.set(p("pf.instr"), core.prefetch.issued_instr);
            c.set(p("tlb.itlb_miss"), core.tlb.itlb_misses);
            c.set(p("tlb.stlb_miss"), core.tlb.stlb_misses);
        }
        c.set("dram.reads", self.dram.reads);
        c.set("dram.writes", self.dram.writes);
        c.set("dram.bytes", self.dram.bytes);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_axes() {
        assert_eq!(AccessClass::new(true, Privilege::User), AccessClass::InstrUser);
        assert_eq!(AccessClass::new(false, Privilege::Kernel), AccessClass::DataKernel);
        assert!(AccessClass::InstrKernel.is_instr());
        assert!(!AccessClass::DataUser.is_instr());
    }

    #[test]
    fn level_stats_record_and_derive() {
        let mut s = LevelStats::default();
        s.record(AccessClass::DataUser, true);
        s.record(AccessClass::DataUser, false);
        s.record(AccessClass::InstrKernel, false);
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.total_hits(), 1);
        assert_eq!(s.misses(AccessClass::DataUser), 1);
        assert_eq!(s.instr_misses(), (0, 1));
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn core_stats_aggregates() {
        let mut s = CoreMemStats::default();
        s.llc.record(AccessClass::DataUser, true);
        s.llc.record(AccessClass::DataKernel, true);
        s.llc.record(AccessClass::InstrUser, true);
        s.rw_shared[0] = 2;
        s.dram_bytes = [100, 50];
        assert_eq!(s.llc_data_refs(), 2);
        assert_eq!(s.rw_shared_total(), 2);
        assert_eq!(s.dram_bytes_total(), 150);
    }

    #[test]
    fn merge_sums_every_counter_and_codec_roundtrips() {
        let mut a = CoreMemStats::default();
        a.l1d.record(AccessClass::DataUser, true);
        a.l1d.record(AccessClass::DataKernel, false);
        a.llc.record(AccessClass::InstrUser, true);
        a.rw_shared = [3, 1];
        a.upgrades = 2;
        a.dram_bytes = [640, 128];
        a.prefetch.issued_stride = 5;
        a.prefetch.useful_l2 = 4;
        a.tlb.dtlb_misses = 9;
        a.tlb.stlb_miss_cycles = 77;
        let mut b = a.clone();
        b.merge_from(&a);
        assert_eq!(b.l1d.total_accesses(), 2 * a.l1d.total_accesses());
        assert_eq!(b.l1d.total_hits(), 2 * a.l1d.total_hits());
        assert_eq!(b.llc.accesses[AccessClass::InstrUser.idx()], 2);
        assert_eq!(b.rw_shared, [6, 2]);
        assert_eq!(b.upgrades, 4);
        assert_eq!(b.dram_bytes_total(), 2 * 768);
        assert_eq!(b.prefetch.issued_stride, 10);
        assert_eq!(b.prefetch.useful_l2, 8);
        assert_eq!(b.tlb.dtlb_misses, 18);
        assert_eq!(b.tlb.stlb_miss_cycles, 154);

        let mut e = cs_trace::snap::Enc::new();
        b.encode_snap(&mut e);
        let mut d = cs_trace::snap::Dec::new(&e.buf);
        let mut back = CoreMemStats::default();
        back.restore_snap(&mut d).expect("restore");
        assert_eq!(back, b);
    }

    #[test]
    fn counters_export_is_deterministic() {
        let mut m = MemStats { per_core: vec![CoreMemStats::default(); 2], ..Default::default() };
        m.per_core[1].upgrades = 7;
        let c = m.to_counters();
        assert_eq!(c.get("core1.upgrades"), 7);
        assert_eq!(c.get("core0.upgrades"), 0);
        assert_eq!(m.to_counters(), c);
    }
}
