//! Memory-system statistics.
//!
//! Hot-path counters are plain struct fields, grouped per core and per
//! level, and classified along the two axes every figure in the paper
//! splits on: instruction vs. data, and application vs. operating system.

use crate::dram::DramStats;
use cs_perf::CounterSet;
use cs_trace::Privilege;
use serde::{Deserialize, Serialize};

/// Classification of a memory access for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessClass {
    /// Instruction fetch, application code.
    InstrUser = 0,
    /// Instruction fetch, kernel code.
    InstrKernel = 1,
    /// Data access, application.
    DataUser = 2,
    /// Data access, kernel.
    DataKernel = 3,
}

impl AccessClass {
    /// Builds the class from the access axes.
    #[inline]
    pub fn new(is_instr: bool, privilege: Privilege) -> Self {
        match (is_instr, privilege.is_kernel()) {
            (true, false) => AccessClass::InstrUser,
            (true, true) => AccessClass::InstrKernel,
            (false, false) => AccessClass::DataUser,
            (false, true) => AccessClass::DataKernel,
        }
    }

    /// Index for stat arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Whether this is an instruction class.
    pub fn is_instr(self) -> bool {
        matches!(self, AccessClass::InstrUser | AccessClass::InstrKernel)
    }

    /// All four classes.
    pub fn all() -> [AccessClass; 4] {
        [
            AccessClass::InstrUser,
            AccessClass::InstrKernel,
            AccessClass::DataUser,
            AccessClass::DataKernel,
        ]
    }
}

/// Accesses and hits at one cache level, split by [`AccessClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Demand accesses per class.
    pub accesses: [u64; 4],
    /// Demand hits per class.
    pub hits: [u64; 4],
}

impl LevelStats {
    /// Records an access and whether it hit.
    #[inline]
    pub fn record(&mut self, class: AccessClass, hit: bool) {
        self.accesses[class.idx()] += 1;
        if hit {
            self.hits[class.idx()] += 1;
        }
    }

    /// Misses per class.
    pub fn misses(&self, class: AccessClass) -> u64 {
        self.accesses[class.idx()] - self.hits[class.idx()]
    }

    /// Total accesses over all classes.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Total hits over all classes.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Overall hit ratio (0 when never accessed).
    pub fn hit_ratio(&self) -> f64 {
        cs_perf::ratio(self.total_hits(), self.total_accesses())
    }

    /// Instruction misses (user + kernel).
    pub fn instr_misses(&self) -> (u64, u64) {
        (self.misses(AccessClass::InstrUser), self.misses(AccessClass::InstrKernel))
    }
}

/// Prefetcher activity for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetches issued by the adjacent-line prefetcher.
    pub issued_adjacent: u64,
    /// Prefetches issued by the L2 HW stride prefetcher.
    pub issued_stride: u64,
    /// Prefetches issued by the DCU streamer.
    pub issued_dcu: u64,
    /// Prefetches issued by the L1-I next-line prefetcher.
    pub issued_instr: u64,
    /// Demand hits on prefetched lines, at the L1-D.
    pub useful_l1d: u64,
    /// Demand hits on prefetched lines, at the L2.
    pub useful_l2: u64,
    /// Demand hits on prefetched lines, at the L1-I.
    pub useful_l1i: u64,
}

/// TLB activity for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// ITLB first-level misses.
    pub itlb_misses: u64,
    /// DTLB first-level misses.
    pub dtlb_misses: u64,
    /// Second-level TLB misses (page walks).
    pub stlb_misses: u64,
    /// Cycles of ITLB-miss stall (enters the §3.1 memory-cycle formula).
    pub itlb_miss_cycles: u64,
    /// Cycles of second-level TLB miss stall (ditto).
    pub stlb_miss_cycles: u64,
}

/// All memory-system statistics attributed to one core.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreMemStats {
    /// L1 instruction cache.
    pub l1i: LevelStats,
    /// L1 data cache.
    pub l1d: LevelStats,
    /// Private L2.
    pub l2: LevelStats,
    /// Shared LLC (accesses by this core).
    pub llc: LevelStats,
    /// LLC *data* references that hit a block most recently written by
    /// another core, split user/kernel (Figure 6 numerator).
    pub rw_shared: [u64; 2],
    /// Ownership upgrades (RFOs for lines already present clean).
    pub upgrades: u64,
    /// Bytes this core moved to/from DRAM (demand fills, prefetch fills and
    /// writebacks it caused), split user/kernel (Figure 7 numerator).
    pub dram_bytes: [u64; 2],
    /// Prefetcher activity.
    pub prefetch: PrefetchStats,
    /// TLB activity.
    pub tlb: TlbStats,
}

impl CoreMemStats {
    /// LLC data references (Figure 6 denominator).
    pub fn llc_data_refs(&self) -> u64 {
        self.llc.accesses[AccessClass::DataUser.idx()]
            + self.llc.accesses[AccessClass::DataKernel.idx()]
    }

    /// Total read-write shared LLC hits.
    pub fn rw_shared_total(&self) -> u64 {
        self.rw_shared[0] + self.rw_shared[1]
    }

    /// Total DRAM bytes attributed to this core.
    pub fn dram_bytes_total(&self) -> u64 {
        self.dram_bytes[0] + self.dram_bytes[1]
    }
}

/// Statistics for the whole memory system.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Per-core statistics (indexed by global core id).
    pub per_core: Vec<CoreMemStats>,
    /// DRAM subsystem totals.
    pub dram: DramStats,
}

impl MemStats {
    /// Exports every counter into a flat [`CounterSet`] (used by the
    /// determinism tests and JSON output).
    pub fn to_counters(&self) -> CounterSet {
        let mut c = CounterSet::new();
        for (i, core) in self.per_core.iter().enumerate() {
            let p = |name: &str| format!("core{i}.{name}");
            for (lname, level) in [
                ("l1i", &core.l1i),
                ("l1d", &core.l1d),
                ("l2", &core.l2),
                ("llc", &core.llc),
            ] {
                for class in AccessClass::all() {
                    c.set(
                        p(&format!("{lname}.acc.{}", class.idx())),
                        level.accesses[class.idx()],
                    );
                    c.set(p(&format!("{lname}.hit.{}", class.idx())), level.hits[class.idx()]);
                }
            }
            c.set(p("rw_shared.user"), core.rw_shared[0]);
            c.set(p("rw_shared.kernel"), core.rw_shared[1]);
            c.set(p("upgrades"), core.upgrades);
            c.set(p("dram_bytes.user"), core.dram_bytes[0]);
            c.set(p("dram_bytes.kernel"), core.dram_bytes[1]);
            c.set(p("pf.adj"), core.prefetch.issued_adjacent);
            c.set(p("pf.stride"), core.prefetch.issued_stride);
            c.set(p("pf.dcu"), core.prefetch.issued_dcu);
            c.set(p("pf.instr"), core.prefetch.issued_instr);
            c.set(p("tlb.itlb_miss"), core.tlb.itlb_misses);
            c.set(p("tlb.stlb_miss"), core.tlb.stlb_misses);
        }
        c.set("dram.reads", self.dram.reads);
        c.set("dram.writes", self.dram.writes);
        c.set("dram.bytes", self.dram.bytes);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_axes() {
        assert_eq!(AccessClass::new(true, Privilege::User), AccessClass::InstrUser);
        assert_eq!(AccessClass::new(false, Privilege::Kernel), AccessClass::DataKernel);
        assert!(AccessClass::InstrKernel.is_instr());
        assert!(!AccessClass::DataUser.is_instr());
    }

    #[test]
    fn level_stats_record_and_derive() {
        let mut s = LevelStats::default();
        s.record(AccessClass::DataUser, true);
        s.record(AccessClass::DataUser, false);
        s.record(AccessClass::InstrKernel, false);
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.total_hits(), 1);
        assert_eq!(s.misses(AccessClass::DataUser), 1);
        assert_eq!(s.instr_misses(), (0, 1));
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn core_stats_aggregates() {
        let mut s = CoreMemStats::default();
        s.llc.record(AccessClass::DataUser, true);
        s.llc.record(AccessClass::DataKernel, true);
        s.llc.record(AccessClass::InstrUser, true);
        s.rw_shared[0] = 2;
        s.dram_bytes = [100, 50];
        assert_eq!(s.llc_data_refs(), 2);
        assert_eq!(s.rw_shared_total(), 2);
        assert_eq!(s.dram_bytes_total(), 150);
    }

    #[test]
    fn counters_export_is_deterministic() {
        let mut m = MemStats { per_core: vec![CoreMemStats::default(); 2], ..Default::default() };
        m.per_core[1].upgrades = 7;
        let c = m.to_counters();
        assert_eq!(c.get("core1.upgrades"), 7);
        assert_eq!(c.get("core0.upgrades"), 0);
        assert_eq!(m.to_counters(), c);
    }
}
