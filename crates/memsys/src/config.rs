//! Memory-system configuration, with Table 1 (Xeon X5670) defaults.

use serde::{Deserialize, Serialize};

/// Geometry and timing of one cache level.
///
/// `latency` is the *cumulative* load-to-use latency of a hit at this level,
/// in core cycles, so outcomes can be charged directly without re-walking
/// the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Cumulative hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// 32 KB, 8-way, 4-cycle L1 (Table 1: "32KB, split I/D, 4-cycle").
    pub fn l1() -> Self {
        Self { size_bytes: 32 * 1024, assoc: 8, latency: 4 }
    }

    /// 256 KB, 8-way private unified L2 (Table 1: "6-cycle access latency"
    /// beyond the L1, i.e. 10 cycles load-to-use).
    pub fn l2() -> Self {
        Self { size_bytes: 256 * 1024, assoc: 8, latency: 10 }
    }

    /// 12 MB, 16-way shared LLC (Table 1: "29-cycle access latency", i.e.
    /// 39 cycles load-to-use).
    pub fn llc() -> Self {
        Self { size_bytes: 12 << 20, assoc: 16, latency: 39 }
    }

    /// Same geometry with a different capacity (Figure 4 style resizing).
    pub fn with_size(mut self, size_bytes: u64) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Number of sets for 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or capacity not a
    /// positive multiple of `assoc * 64`).
    pub fn sets(&self) -> usize {
        assert!(self.assoc > 0, "cache needs at least one way");
        let lines = (self.size_bytes / 64) as usize;
        assert!(lines > 0 && lines.is_multiple_of(self.assoc), "capacity must be a multiple of assoc*64");
        lines / self.assoc
    }
}

/// Geometry and miss penalties of the TLB hierarchy (Westmere-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// First-level instruction TLB entries.
    pub itlb_entries: usize,
    /// First-level data TLB entries.
    pub dtlb_entries: usize,
    /// Unified second-level TLB entries.
    pub stlb_entries: usize,
    /// Extra cycles for a first-level miss that hits the STLB.
    pub stlb_hit_penalty: u32,
    /// Extra cycles for a full page walk.
    pub walk_penalty: u32,
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self {
            itlb_entries: 64,
            dtlb_entries: 64,
            stlb_entries: 512,
            stlb_hit_penalty: 7,
            walk_penalty: 35,
        }
    }
}

/// DDR3 memory subsystem (Table 1: "3 DDR3 channels, delivering up to
/// 32 GB/s" at 2.93 GHz, i.e. ≈ 3.64 bytes/cycle/channel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Peak bytes per core cycle per channel.
    pub bytes_per_cycle_per_channel: f64,
    /// Idle access latency beyond the LLC, in cycles.
    pub latency: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self { channels: 3, bytes_per_cycle_per_channel: 3.64, latency: 190 }
    }
}

impl DramConfig {
    /// Peak bandwidth of the whole subsystem in bytes per cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * self.bytes_per_cycle_per_channel
    }
}

/// Which hardware prefetchers are enabled (the BIOS toggles of §4.3 /
/// Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// L2 adjacent-line prefetcher (fetches the 128-byte companion line).
    pub adjacent_line: bool,
    /// L2 HW (stride/stream) prefetcher.
    pub hw_stride: bool,
    /// L1-D DCU streamer (next-line into the L1-D).
    pub dcu_streamer: bool,
    /// L1-I next-line instruction prefetcher.
    pub instr_next_line: bool,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self { adjacent_line: true, hw_stride: true, dcu_streamer: true, instr_next_line: true }
    }
}

impl PrefetchConfig {
    /// All prefetchers off.
    pub fn none() -> Self {
        Self { adjacent_line: false, hw_stride: false, dcu_streamer: false, instr_next_line: false }
    }
}

/// Multi-tenant quality-of-service knobs: LLC way partitioning and DRAM
/// bandwidth throttling. Both default to off, and a defaulted [`QosConfig`]
/// leaves every simulated byte identical to a build without one — the
/// interference-matrix mitigations are strictly opt-in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosConfig {
    /// Per-tenant LLC way masks (bit `i` = way `i`): tenant `t` may only
    /// allocate LLC lines in the ways of `llc_way_masks[t]`. `None`
    /// disables partitioning; tenants beyond the list are unrestricted.
    #[serde(default)]
    pub llc_way_masks: Option<Vec<u64>>,
    /// Per-tenant DRAM bandwidth budgets in bytes per window. `None`
    /// disables throttling; tenants beyond the list are unthrottled.
    #[serde(default)]
    pub dram_budgets: Option<Vec<u64>>,
    /// Length of one throttle accounting window in cycles (only read when
    /// `dram_budgets` is set).
    #[serde(default = "QosConfig::default_window")]
    pub dram_budget_window: u64,
}

impl Default for QosConfig {
    fn default() -> Self {
        Self {
            llc_way_masks: None,
            dram_budgets: None,
            dram_budget_window: Self::default_window(),
        }
    }
}

impl QosConfig {
    /// Default throttle window: 10k cycles — long enough to amortize
    /// burstiness, short enough that a deferred access resumes quickly.
    pub fn default_window() -> u64 {
        10_000
    }

    /// True when neither mitigation is configured (the common case; lets
    /// hot paths skip tenant bookkeeping entirely).
    pub fn is_off(&self) -> bool {
        self.llc_way_masks.is_none() && self.dram_budgets.is_none()
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSysConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache (per socket).
    pub llc: CacheConfig,
    /// TLB hierarchy.
    pub tlb: TlbConfig,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// Prefetcher enables.
    pub prefetch: PrefetchConfig,
    /// Cores per socket (Table 1: 6).
    pub cores_per_socket: usize,
    /// Extra latency of a snoop hit in the remote socket's LLC, beyond the
    /// local LLC latency.
    pub remote_snoop_extra: u32,
    /// Optional deterministic fault-injection plan (tests and robustness
    /// studies; `None` in every normal run).
    #[serde(default)]
    pub fault: Option<crate::fault::FaultPlan>,
    /// Multi-tenant QoS knobs (LLC way partition, DRAM throttle); both
    /// off by default.
    #[serde(default)]
    pub qos: QosConfig,
}

impl Default for MemSysConfig {
    fn default() -> Self {
        Self {
            l1i: CacheConfig::l1(),
            l1d: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            llc: CacheConfig::llc(),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            prefetch: PrefetchConfig::default(),
            cores_per_socket: 6,
            remote_snoop_extra: 70,
            fault: None,
            qos: QosConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        assert_eq!(CacheConfig::l1().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 512);
        assert_eq!(CacheConfig::llc().sets(), 12288);
    }

    #[test]
    fn latencies_are_monotone() {
        let c = MemSysConfig::default();
        assert!(c.l1d.latency < c.l2.latency);
        assert!(c.l2.latency < c.llc.latency);
        assert!(c.llc.latency < c.llc.latency + c.dram.latency);
    }

    #[test]
    fn dram_peak_matches_table1() {
        let d = DramConfig::default();
        // 32 GB/s at 2.93 GHz ≈ 10.9 B/cycle.
        assert!((d.peak_bytes_per_cycle() - 10.92).abs() < 0.2);
    }

    #[test]
    fn with_size_preserves_geometry() {
        let llc = CacheConfig::llc().with_size(6 << 20);
        assert_eq!(llc.assoc, 16);
        assert_eq!(llc.sets(), 6144);
    }

    #[test]
    #[should_panic(expected = "multiple of assoc")]
    fn rejects_non_multiple_capacity() {
        let _ = CacheConfig { size_bytes: 100, assoc: 3, latency: 1 }.sets();
    }

    #[test]
    fn prefetch_none_disables_everything() {
        let p = PrefetchConfig::none();
        assert!(!p.adjacent_line && !p.hw_stride && !p.dcu_streamer && !p.instr_next_line);
    }
}
