//! TLB hierarchy model.
//!
//! The paper's §3.1 memory-cycle formula explicitly includes "second-level
//! TLB miss cycles and the first-level instruction TLB miss cycles", so the
//! TLBs are modeled as first-class citizens: per-core L1 instruction and
//! data TLBs backed by a unified second-level TLB, with fixed penalties for
//! an STLB hit and a full page walk.

use crate::cache::{Cache, LineMeta};
use crate::config::TlbConfig;

/// Which level satisfied a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// First-level TLB hit (no penalty).
    L1,
    /// First-level miss, second-level hit.
    Stlb,
    /// Full page walk.
    Walk,
}

/// Per-core TLB hierarchy (L1-I TLB, L1-D TLB, shared STLB).
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    itlb: Cache,
    dtlb: Cache,
    stlb: Cache,
    cfg: TlbConfig,
}

impl TlbHierarchy {
    /// Builds the hierarchy described by `cfg` (fully-associative levels
    /// are approximated as 4-way).
    pub fn new(cfg: TlbConfig) -> Self {
        let mk = |entries: usize| Cache::new((entries / 4).max(1), 4);
        Self {
            itlb: mk(cfg.itlb_entries),
            dtlb: mk(cfg.dtlb_entries),
            stlb: mk(cfg.stlb_entries),
            cfg,
        }
    }

    fn translate(first: &mut Cache, stlb: &mut Cache, page: u64) -> TlbOutcome {
        if first.lookup(page).is_some() {
            return TlbOutcome::L1;
        }
        let outcome = if stlb.lookup(page).is_some() {
            TlbOutcome::Stlb
        } else {
            stlb.fill(page, LineMeta::clean());
            TlbOutcome::Walk
        };
        first.fill(page, LineMeta::clean());
        outcome
    }

    /// Translates an instruction-fetch page.
    pub fn translate_instr(&mut self, page: u64) -> TlbOutcome {
        Self::translate(&mut self.itlb, &mut self.stlb, page)
    }

    /// Translates a data page.
    pub fn translate_data(&mut self, page: u64) -> TlbOutcome {
        Self::translate(&mut self.dtlb, &mut self.stlb, page)
    }

    /// Way index of `page` in the data TLB, if resident (no LRU touch).
    pub fn dtlb_way_of(&self, page: u64) -> Option<usize> {
        self.dtlb.probe(page).map(|(way, _)| way)
    }

    /// Way index of `page` in the instruction TLB, if resident (no LRU
    /// touch).
    pub fn itlb_way_of(&self, page: u64) -> Option<usize> {
        self.itlb.probe(page).map(|(way, _)| way)
    }

    /// Whether `way` of the data TLB currently holds `page` (no LRU
    /// touch); O(1) revalidation of a memoized way index.
    #[inline]
    pub fn dtlb_way_holds(&self, way: usize, page: u64) -> bool {
        self.dtlb.way_holds(way, page).is_some()
    }

    /// Whether `way` of the instruction TLB currently holds `page` (no
    /// LRU touch); O(1) revalidation of a memoized way index.
    #[inline]
    pub fn itlb_way_holds(&self, way: usize, page: u64) -> bool {
        self.itlb.way_holds(way, page).is_some()
    }

    /// Re-stamps a data-TLB way as most-recently used, exactly as a
    /// [`TlbHierarchy::translate_data`] hit on its resident page would.
    #[inline]
    pub fn touch_dtlb(&mut self, way: usize) {
        self.dtlb.touch_way(way);
    }

    /// Re-stamps an instruction-TLB way as most-recently used, exactly as
    /// a [`TlbHierarchy::translate_instr`] hit on its resident page would.
    #[inline]
    pub fn touch_itlb(&mut self, way: usize) {
        self.itlb.touch_way(way);
    }

    /// Cycle penalty of an outcome under this configuration.
    pub fn penalty(&self, outcome: TlbOutcome) -> u32 {
        match outcome {
            TlbOutcome::L1 => 0,
            TlbOutcome::Stlb => self.cfg.stlb_hit_penalty,
            TlbOutcome::Walk => self.cfg.walk_penalty,
        }
    }

    /// Serializes all three TLB levels into `e`.
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        self.itlb.encode_snap(e);
        self.dtlb.encode_snap(e);
        self.stlb.encode_snap(e);
    }

    /// Restores state written by [`TlbHierarchy::encode_snap`]; the
    /// hierarchy must have been built from the same configuration.
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        self.itlb.restore_snap(d)?;
        self.dtlb.restore_snap(d)?;
        self.stlb.restore_snap(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> TlbHierarchy {
        TlbHierarchy::new(TlbConfig::default())
    }

    #[test]
    fn first_access_walks_then_hits() {
        let mut t = tlb();
        assert_eq!(t.translate_data(42), TlbOutcome::Walk);
        assert_eq!(t.translate_data(42), TlbOutcome::L1);
    }

    #[test]
    fn stlb_backs_first_level_evictions() {
        let mut t = tlb();
        // Fill far beyond DTLB capacity (64) but within STLB (512).
        for page in 0..256u64 {
            t.translate_data(page);
        }
        // Page 0 fell out of the DTLB but should still be in the STLB.
        let outcome = t.translate_data(0);
        assert_ne!(outcome, TlbOutcome::L1);
        // Some early page must still be STLB-resident.
        let stlb_hits = (0..256u64)
            .filter(|&p| matches!(tlb_probe(&mut t, p), TlbOutcome::Stlb))
            .count();
        assert!(stlb_hits > 0);
    }

    fn tlb_probe(t: &mut TlbHierarchy, page: u64) -> TlbOutcome {
        t.translate_data(page)
    }

    #[test]
    fn instruction_and_data_tlbs_are_separate() {
        let mut t = tlb();
        assert_eq!(t.translate_instr(7), TlbOutcome::Walk);
        // Data side misses its own L1 TLB but hits the shared STLB.
        assert_eq!(t.translate_data(7), TlbOutcome::Stlb);
    }

    #[test]
    fn penalties_follow_config() {
        let cfg = TlbConfig::default();
        let t = TlbHierarchy::new(cfg);
        assert_eq!(t.penalty(TlbOutcome::L1), 0);
        assert_eq!(t.penalty(TlbOutcome::Stlb), cfg.stlb_hit_penalty);
        assert_eq!(t.penalty(TlbOutcome::Walk), cfg.walk_penalty);
    }

    #[test]
    fn huge_page_set_thrashes_everything() {
        let mut t = tlb();
        for page in 0..100_000u64 {
            t.translate_data(page);
        }
        // A random old page walks again.
        assert_eq!(t.translate_data(3), TlbOutcome::Walk);
    }
}
