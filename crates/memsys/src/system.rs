//! The composed memory system: private caches, shared LLCs, coherence,
//! prefetchers, TLBs and DRAM.
//!
//! One [`MemorySystem`] models both sockets of the paper's blade. Demand
//! accesses walk the hierarchy synchronously and return an outcome carrying
//! everything the §3.1 methodology needs:
//!
//! - the load-to-use **latency** in cycles (including TLB penalties and
//!   DRAM queueing),
//! - whether the request went **off-core** (missed the private L2 — the
//!   super-queue events whose occupancy defines memory cycles and MLP),
//! - which **level** serviced it (L2 instruction hits enter the memory
//!   cycle formula; Figure 1),
//! - whether the line was **read-write shared**, i.e. most recently written
//!   by a different core (Figure 6),
//! - the **TLB stall** components (Figure 1's memory-cycle formula).
//!
//! Coherence is modeled MESI-like: private lines track writability
//! (E/M vs. S), stores to non-writable lines issue upgrades (RFOs) that
//! travel off-core, LLC lines remember their `fresh_writer` until the write
//! is observed by another core, and cross-socket requests snoop the remote
//! LLC. Inclusion is enforced: LLC evictions back-invalidate private
//! copies.

use crate::cache::{Cache, LineMeta};
use crate::config::MemSysConfig;
use crate::dram::{BandwidthRegulator, Dram};
use crate::fault::{FaultCounters, FaultState};
use crate::prefetch::{adjacent_line, next_line, StridePrefetcher};
use crate::stats::{AccessClass, CoreMemStats, MemStats};
use crate::tlb::{TlbHierarchy, TlbOutcome};
use cs_trace::Privilege;

/// Which level of the hierarchy serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceLevel {
    /// First-level cache hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Local-socket LLC hit.
    LocalLlc,
    /// Snoop hit in the remote socket's LLC.
    RemoteLlc,
    /// Off-chip memory access.
    Dram,
}

impl ServiceLevel {
    /// Whether the request left the core (missed the private L2).
    pub fn is_offcore(self) -> bool {
        self >= ServiceLevel::LocalLlc
    }
}

/// Outcome of an instruction fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Load-to-use latency in cycles, including TLB penalties.
    pub latency: u32,
    /// Servicing level.
    pub level: ServiceLevel,
    /// Whether the fetch went off-core.
    pub offcore: bool,
    /// Cycles stalled on an ITLB miss that hit the STLB.
    pub itlb_stall: u32,
    /// Cycles stalled on a second-level TLB miss (page walk).
    pub stlb_stall: u32,
}

/// Outcome of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOutcome {
    /// Load-to-use latency in cycles, including TLB penalties.
    pub latency: u32,
    /// Servicing level.
    pub level: ServiceLevel,
    /// Whether the request went off-core (L2 miss or upgrade).
    pub offcore: bool,
    /// Whether the line was most recently written by another core.
    pub rw_shared: bool,
    /// Cycles stalled on a second-level TLB miss (page walk).
    pub stlb_stall: u32,
}

/// The full two-socket memory system.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemSysConfig,
    n_cores: usize,
    n_sockets: usize,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    llcs: Vec<Cache>,
    tlbs: Vec<TlbHierarchy>,
    stride: Vec<StridePrefetcher>,
    dcu_last_miss: Vec<u64>,
    dram: Dram,
    stats: MemStats,
    pf_buf: Vec<u64>,
    fault: Option<FaultState>,
    /// Transient flag set only for the duration of one
    /// [`MemorySystem::ifetch_warm`] / [`MemorySystem::data_access_warm`]
    /// call: the access updates every piece of microarchitectural state
    /// but bypasses the DRAM channel timers and bandwidth books. Always
    /// false between accesses (like `pf_buf`), so it is not serialized.
    warming: bool,
    /// Per-core direct-mapped memo tables over recent pure-L1 hits on the
    /// warm path: `warm_data[core]` for `data_access_warm`,
    /// `warm_instr[core]` for `ifetch_warm`. A memo records where a line
    /// and its page were found (L1 way, first-level-TLB way) the last
    /// time a warm access to the line was serviced as a pure L1 hit. On
    /// a repeat touch, the warm path revalidates every premise of the
    /// skip *directly against current state* in O(1) — the line still
    /// sits at that way, its `prefetched` flag is clear, for stores it
    /// is writable and dirty, and the page still sits at that TLB way —
    /// and then replays the hit: the exact LRU touches the walk would
    /// make (way-for-way, tick-for-tick, so snapshots and digests are
    /// byte-identical) plus the L1 hit counter. Because validation reads
    /// the live cache state, no invalidation hooks are needed anywhere:
    /// any fill, eviction, coherence invalidation or downgrade that
    /// breaks a premise makes the check fail and the access fall back to
    /// the ordinary walk. Pure accelerator — never serialized, wiped on
    /// restore.
    warm_data: Vec<Box<[WarmMemo]>>,
    /// Instruction-side memo table; see `warm_data`.
    warm_instr: Vec<Box<[WarmMemo]>>,
    /// Tenant id of each core (all `0` unless the harness co-locates
    /// workloads). Configuration-like — set once before simulation by
    /// [`MemorySystem::set_tenant`] on both the fresh and the restore
    /// path, so it is not serialized.
    tenants: Vec<u8>,
    /// Per-tenant DRAM bandwidth throttle, present only when
    /// [`crate::config::QosConfig::dram_budgets`] is configured. Its
    /// window cursors are dynamic simulation state and are serialized.
    regulator: Option<BandwidthRegulator>,
}

/// One entry of the warm-path memo tables; see `MemorySystem::warm_data`.
#[derive(Debug, Clone, Copy)]
struct WarmMemo {
    /// Memoized line address; `u64::MAX` marks an empty entry.
    line: u64,
    /// Way the line was last found at in the L1 cache.
    l1_way: u32,
    /// Way the line's page was last found at in the first-level TLB.
    tlb_way: u32,
    /// Tenant the memo was recorded under: a memo keyed by (tenant, line)
    /// never replays for a core whose tenant has since changed, keeping
    /// functional warming sound under co-location.
    tenant: u8,
}

impl WarmMemo {
    const EMPTY: Self = Self { line: u64::MAX, l1_way: 0, tlb_way: 0, tenant: 0 };
}

/// Entries per warm-memo table. Power of two (the index is a mask of the
/// line address); 512 matches the L1-D line capacity, so the table can
/// cover the whole warm working set that is skippable at all.
const WARM_MEMO_SLOTS: usize = 512;

impl MemorySystem {
    /// Builds the memory system for `n_cores` cores under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or exceeds what the sharer bitmask can
    /// track per socket (16).
    pub fn new(cfg: MemSysConfig, n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        assert!(cfg.cores_per_socket > 0 && cfg.cores_per_socket <= 16, "1..=16 cores per socket");
        let n_sockets = n_cores.div_ceil(cfg.cores_per_socket);
        Self {
            l1i: (0..n_cores).map(|_| Cache::from_config(&cfg.l1i)).collect(),
            l1d: (0..n_cores).map(|_| Cache::from_config(&cfg.l1d)).collect(),
            l2: (0..n_cores).map(|_| Cache::from_config(&cfg.l2)).collect(),
            llcs: (0..n_sockets).map(|_| Cache::from_config(&cfg.llc)).collect(),
            tlbs: (0..n_cores).map(|_| TlbHierarchy::new(cfg.tlb)).collect(),
            stride: (0..n_cores).map(|_| StridePrefetcher::default()).collect(),
            dcu_last_miss: vec![u64::MAX - 1; n_cores],
            dram: Dram::new(cfg.dram),
            stats: MemStats { per_core: vec![CoreMemStats::default(); n_cores], ..Default::default() },
            pf_buf: Vec::with_capacity(8),
            fault: cfg.fault.map(FaultState::new),
            warming: false,
            warm_data: (0..n_cores)
                .map(|_| vec![WarmMemo::EMPTY; WARM_MEMO_SLOTS].into_boxed_slice())
                .collect(),
            warm_instr: (0..n_cores)
                .map(|_| vec![WarmMemo::EMPTY; WARM_MEMO_SLOTS].into_boxed_slice())
                .collect(),
            tenants: vec![0; n_cores],
            regulator: cfg
                .qos
                .dram_budgets
                .as_ref()
                .map(|b| BandwidthRegulator::new(cfg.qos.dram_budget_window, b.clone())),
            n_cores,
            n_sockets,
            cfg,
        }
    }

    /// Assigns `core` to `tenant` (default: every core is tenant 0).
    /// Called by the harness before simulation starts; the tenant map is
    /// part of the run's configuration, not of its dynamic state, so the
    /// restore path re-applies it the same way the fresh path does.
    ///
    /// Changing a core's tenant invalidates that core's warm memos: a
    /// memoized hit must not replay under a different tenant tag.
    pub fn set_tenant(&mut self, core: usize, tenant: u8) {
        if self.tenants[core] != tenant {
            self.tenants[core] = tenant;
            self.warm_data[core].fill(WarmMemo::EMPTY);
            self.warm_instr[core].fill(WarmMemo::EMPTY);
        }
    }

    /// Tenant id of `core`.
    pub fn tenant_of(&self, core: usize) -> u8 {
        self.tenants[core]
    }

    /// LLC lines currently owned by `tenant`, summed over sockets
    /// (O(LLC capacity); read at report time only).
    pub fn llc_tenant_lines(&self, tenant: u8) -> u64 {
        self.llcs.iter().map(|c| c.tenant_lines(tenant) as u64).sum()
    }

    /// Total valid LLC lines, summed over sockets.
    pub fn llc_valid_lines(&self) -> u64 {
        self.llcs.iter().map(|c| c.valid_lines() as u64).sum()
    }

    /// The LLC way mask tenant `t` allocates under (full when
    /// partitioning is off or the tenant is beyond the configured list).
    #[inline]
    fn way_mask_of(&self, tenant: u8) -> u64 {
        match &self.cfg.qos.llc_way_masks {
            Some(masks) => masks.get(tenant as usize).copied().unwrap_or(u64::MAX),
            None => u64::MAX,
        }
    }

    /// Wipes every warm-path memo (see `warm_data`).
    fn clear_warm_memos(&mut self) {
        for table in self.warm_data.iter_mut().chain(self.warm_instr.iter_mut()) {
            table.fill(WarmMemo::EMPTY);
        }
    }

    /// Counts of injected faults so far, when a [`crate::fault::FaultPlan`]
    /// is active.
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.fault.as_ref().map(|f| f.counters())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MemSysConfig {
        &self.cfg
    }

    /// Number of cores served.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Mutable statistics (for window snapshotting by the harness).
    pub fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    /// Zeroes all statistics while preserving cache, TLB, prefetcher and
    /// DRAM *state*. Called by the harness at the end of the warmup window
    /// (the simulator's equivalent of starting the paper's 180-second
    /// VTune measurement after ramp-up).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats {
            per_core: vec![CoreMemStats::default(); self.n_cores],
            ..Default::default()
        };
        self.dram.reset_stats();
    }

    /// DRAM statistics (includes totals for Figure 7).
    pub fn dram_stats(&self) -> crate::dram::DramStats {
        self.dram.stats()
    }

    /// Writes a self-contained snapshot of all statistics into `out`,
    /// with the DRAM totals filled in (the in-place [`Self::stats`] view
    /// keeps them separate for hot-path reasons).
    ///
    /// Reuses `out`'s buffers, so repeated snapshotting — the harness
    /// takes one per measurement window — allocates at most once instead
    /// of cloning the full per-core block each time. One-shot callers
    /// that only need the live counters should read [`Self::stats`] and
    /// [`Self::dram_stats`] directly, by reference.
    pub fn export_stats_into(&self, out: &mut MemStats) {
        out.per_core.clone_from(&self.stats.per_core);
        out.dram = self.dram.stats();
    }

    /// DRAM bandwidth utilization over `elapsed_cycles` (Figure 7 metric).
    pub fn dram_utilization(&self, elapsed_cycles: u64) -> f64 {
        self.dram.utilization(elapsed_cycles)
    }

    /// Serializes the complete mutable state of the memory system into
    /// `e`: every cache array, TLB level, prefetcher table, the DCU miss
    /// cursors, DRAM channel timing, all accumulated statistics and the
    /// fault-plan cursor. Geometry (core/socket counts, cache shapes) is
    /// configuration: it is written only as a guard and rebuilt from the
    /// config on restore. `pf_buf` is per-access scratch, always empty
    /// between accesses, and is not serialized.
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.len(self.n_cores);
        e.len(self.n_sockets);
        for c in &self.l1i {
            c.encode_snap(e);
        }
        for c in &self.l1d {
            c.encode_snap(e);
        }
        for c in &self.l2 {
            c.encode_snap(e);
        }
        for c in &self.llcs {
            c.encode_snap(e);
        }
        for t in &self.tlbs {
            t.encode_snap(e);
        }
        for s in &self.stride {
            s.encode_snap(e);
        }
        for &m in &self.dcu_last_miss {
            e.u64(m);
        }
        self.dram.encode_snap(e);
        for core in &self.stats.per_core {
            encode_core_stats(e, core);
        }
        e.u64(self.stats.dram.reads);
        e.u64(self.stats.dram.writes);
        e.u64(self.stats.dram.bytes);
        e.u64(self.stats.dram.busy_cycles);
        match &self.fault {
            Some(f) => {
                e.bool(true);
                f.encode_snap(e);
            }
            None => e.bool(false),
        }
        match &self.regulator {
            Some(r) => {
                e.bool(true);
                r.encode_snap(e);
            }
            None => e.bool(false),
        }
    }

    /// Restores state written by [`MemorySystem::encode_snap`] into a
    /// system freshly built from the *same configuration*. Topology
    /// disagreements (core count, socket count, fault-plan presence)
    /// are reported as [`cs_trace::snap::SnapError::Mismatch`].
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        use cs_trace::snap::SnapError;
        let cores = d.len()?;
        if cores != self.n_cores {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {cores} cores, memory system has {}",
                self.n_cores
            )));
        }
        let sockets = d.len()?;
        if sockets != self.n_sockets {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {sockets} sockets, memory system has {}",
                self.n_sockets
            )));
        }
        for c in &mut self.l1i {
            c.restore_snap(d)?;
        }
        for c in &mut self.l1d {
            c.restore_snap(d)?;
        }
        for c in &mut self.l2 {
            c.restore_snap(d)?;
        }
        for c in &mut self.llcs {
            c.restore_snap(d)?;
        }
        for t in &mut self.tlbs {
            t.restore_snap(d)?;
        }
        for s in &mut self.stride {
            s.restore_snap(d)?;
        }
        for m in &mut self.dcu_last_miss {
            *m = d.u64()?;
        }
        self.dram.restore_snap(d)?;
        for core in &mut self.stats.per_core {
            restore_core_stats(d, core)?;
        }
        self.stats.dram.reads = d.u64()?;
        self.stats.dram.writes = d.u64()?;
        self.stats.dram.bytes = d.u64()?;
        self.stats.dram.busy_cycles = d.u64()?;
        let had_fault = d.bool()?;
        match (had_fault, &mut self.fault) {
            (true, Some(f)) => f.restore_snap(d)?,
            (false, None) => {}
            (true, None) => {
                return Err(SnapError::Mismatch(
                    "snapshot has an active fault plan, config has none".into(),
                ))
            }
            (false, Some(_)) => {
                return Err(SnapError::Mismatch(
                    "snapshot has no fault plan, config expects one".into(),
                ))
            }
        }
        let had_regulator = d.bool()?;
        match (had_regulator, &mut self.regulator) {
            (true, Some(r)) => r.restore_snap(d)?,
            (false, None) => {}
            (true, None) => {
                return Err(SnapError::Mismatch(
                    "snapshot has a bandwidth regulator, config has none".into(),
                ))
            }
            (false, Some(_)) => {
                return Err(SnapError::Mismatch(
                    "snapshot has no bandwidth regulator, config expects one".into(),
                ))
            }
        }
        // The warm memos are a pure in-memory accelerator, never
        // serialized; start the restored run with them wiped so a resumed
        // run and an uninterrupted one behave identically.
        self.clear_warm_memos();
        Ok(())
    }

    /// Earliest cycle ≥ `now` at which the memory system itself would act
    /// without being called — the memory-side input to the chip's
    /// event-driven cycle skipping.
    ///
    /// The model is *latency-on-access* (see the crate docs): caches,
    /// TLBs, prefetchers, DRAM channel timing and the fault plan all
    /// mutate only inside [`MemorySystem::ifetch`] / [`MemorySystem::data_access`]
    /// calls made by the cores, so today every component honestly reports
    /// "never" and this returns `u64::MAX`. The per-component queries
    /// ([`Dram::next_event_cycle`], [`crate::fault::FaultPlan`]'s
    /// event-indexed stream, the decide-only prefetchers) keep the
    /// contract explicit: any future *time-driven* component (a DRAM
    /// refresh model, an autonomous prefetch queue, a time-scheduled
    /// fault) must surface its next timer here or it will be skipped
    /// over, breaking byte-identity.
    pub fn next_event_cycle(&self, _now: u64) -> u64 {
        let fault_next = self.fault.as_ref().map_or(u64::MAX, |f| f.next_event_cycle());
        self.dram.next_event_cycle().min(fault_next)
    }

    #[inline]
    fn socket_of(&self, core: usize) -> usize {
        core / self.cfg.cores_per_socket
    }

    #[inline]
    fn local_bit(&self, core: usize) -> u16 {
        1 << (core % self.cfg.cores_per_socket)
    }

    /// Iterates global core ids of socket `socket` selected by `mask`.
    fn cores_in_mask(&self, socket: usize, mask: u16) -> impl Iterator<Item = usize> {
        let base = socket * self.cfg.cores_per_socket;
        let n = self.n_cores;
        let cps = self.cfg.cores_per_socket;
        (0..cps).filter(move |i| mask & (1 << i) != 0).map(move |i| base + i).filter(move |c| *c < n)
    }

    // ------------------------------------------------------------------
    // Warming-only paths (functional fast-forward)
    // ------------------------------------------------------------------

    /// [`MemorySystem::ifetch`] minus the timing: the access walks the
    /// same hierarchy and updates every piece of microarchitectural state
    /// — cache arrays and replacement order, coherence metadata, TLBs,
    /// prefetcher tables and streams, and the fault-stream cursor — but
    /// never touches the DRAM channel timers or bandwidth books, and its
    /// latency is discarded. Functional-mode cores drive this during
    /// sampled fast-forward so the next detailed window opens on caches
    /// warmed exactly as detailed execution of the same instruction
    /// stream would have left them ([`MemorySystem::warm_state_digest`]).
    pub fn ifetch_warm(&mut self, core: usize, privilege: Privilege, addr: u64, now: u64) {
        let line = addr >> 6;
        let slot = (line as usize) & (WARM_MEMO_SLOTS - 1);
        let m = self.warm_instr[core][slot];
        if m.line == line && m.tenant == self.tenants[core] {
            let resident = self.l1i[core]
                .way_holds(m.l1_way as usize, line)
                .is_some_and(|meta| !meta.prefetched);
            if resident && self.tlbs[core].itlb_way_holds(m.tlb_way as usize, addr >> 12) {
                // Replay the pure L1-I hit the walk would perform: the
                // ITLB and L1-I LRU touches (way-for-way, tick-for-tick)
                // and the hit counter. See `data_access_warm` for the
                // full argument.
                self.tlbs[core].touch_itlb(m.tlb_way as usize);
                self.l1i[core].touch_way(m.l1_way as usize);
                self.stats.per_core[core].l1i.record(AccessClass::new(true, privilege), true);
                return;
            }
        }
        self.warming = true;
        let _ = self.ifetch(core, privilege, addr, now);
        self.warming = false;
        // Record a memo wherever the line now sits in L1 — after pure L1
        // hits AND after walks that just filled it (the repeat-after-L2-hit
        // pattern: a line bouncing between L1 and L2 becomes replayable on
        // its *second* touch instead of its third). Safe at any service
        // level because every premise is revalidated against live state at
        // replay time; an entry the fill path made invalid (say, a
        // prefetched flag) just falls back to the walk.
        if let (Some((way, _)), Some(tway)) =
            (self.l1i[core].probe(line), self.tlbs[core].itlb_way_of(addr >> 12))
        {
            self.warm_instr[core][slot] = WarmMemo {
                line,
                l1_way: way as u32,
                tlb_way: tway as u32,
                tenant: self.tenants[core],
            };
        }
    }

    /// [`MemorySystem::data_access`] minus the timing; see
    /// [`MemorySystem::ifetch_warm`].
    ///
    /// The warm path additionally memoizes recent pure-L1-hit lines
    /// (`warm_data`) and replays a repeat touch in O(1) instead of
    /// re-walking. The replay is byte-identical to walking: a repeat
    /// pure-L1-D hit's only effects are the DTLB and L1-D LRU touches
    /// (replayed way-for-way, tick advance included, so snapshots and
    /// digests cannot tell the difference), the L1-D hit counter
    /// (recorded right here with the access's own class), and — for
    /// stores — the dirty bit, which the revalidated `writable && dirty`
    /// premise guarantees is already set. Every premise is checked
    /// against live state immediately before the replay: the line still
    /// sits at the memoized L1-D way with `prefetched` clear (so the
    /// walk would record no useful-prefetch event), a store finds it
    /// writable and dirty (so the walk's in-place dirty update and the
    /// upgrade path are both no-ops), and — since a line's 64 bytes lie
    /// within one page — the page still sits at the memoized DTLB way
    /// (so the walk's translation would hit with no TLB stats). The
    /// fault cursor only advances on the DRAM path, so replayed hits
    /// never disturb it.
    pub fn data_access_warm(
        &mut self,
        core: usize,
        privilege: Privilege,
        addr: u64,
        is_store: bool,
        pc: u64,
        now: u64,
    ) {
        let line = addr >> 6;
        let slot = (line as usize) & (WARM_MEMO_SLOTS - 1);
        let m = self.warm_data[core][slot];
        if m.line == line && m.tenant == self.tenants[core] {
            let ok = self.l1d[core].way_holds(m.l1_way as usize, line).is_some_and(|meta| {
                !meta.prefetched && (!is_store || (meta.writable && meta.dirty))
            });
            if ok && self.tlbs[core].dtlb_way_holds(m.tlb_way as usize, addr >> 12) {
                self.tlbs[core].touch_dtlb(m.tlb_way as usize);
                self.l1d[core].touch_way(m.l1_way as usize);
                self.stats.per_core[core].l1d.record(AccessClass::new(false, privilege), true);
                return;
            }
        }
        self.warming = true;
        let _ = self.data_access(core, privilege, addr, is_store, pc, now);
        self.warming = false;
        // Widened like `ifetch_warm`: memoize after fills too, not only
        // pure L1 hits — replay-time revalidation (including the
        // writable-and-dirty premise for stores) keeps it sound.
        if let (Some((way, _)), Some(dway)) =
            (self.l1d[core].probe(line), self.tlbs[core].dtlb_way_of(addr >> 12))
        {
            self.warm_data[core][slot] = WarmMemo {
                line,
                l1_way: way as u32,
                tlb_way: dway as u32,
                tenant: self.tenants[core],
            };
        }
    }

    /// FNV-1a digest over the warmable microarchitectural state — every
    /// cache array, TLB level, prefetcher table and the DCU stream
    /// cursors — and nothing else: no statistics, no DRAM timing, no
    /// fault cursor. Functional-warming soundness is the claim that
    /// detailed and functional execution of the same reference sequence
    /// leave this digest identical; the cs-uarch property tests assert
    /// exactly that.
    pub fn warm_state_digest(&self) -> u64 {
        let mut e = cs_trace::snap::Enc::new();
        for c in &self.l1i {
            c.encode_snap(&mut e);
        }
        for c in &self.l1d {
            c.encode_snap(&mut e);
        }
        for c in &self.l2 {
            c.encode_snap(&mut e);
        }
        for c in &self.llcs {
            c.encode_snap(&mut e);
        }
        for t in &self.tlbs {
            t.encode_snap(&mut e);
        }
        for s in &self.stride {
            s.encode_snap(&mut e);
        }
        for &m in &self.dcu_last_miss {
            e.u64(m);
        }
        cs_trace::snap::fnv1a64(&e.buf)
    }

    // ------------------------------------------------------------------
    // Demand paths
    // ------------------------------------------------------------------

    /// Performs an instruction fetch of the line containing `addr`.
    pub fn ifetch(&mut self, core: usize, privilege: Privilege, addr: u64, now: u64) -> FetchOutcome {
        let line = addr >> 6;
        let class = AccessClass::new(true, privilege);

        // ITLB.
        let tlb_outcome = self.tlbs[core].translate_instr(addr >> 12);
        let tlb_pen = self.tlbs[core].penalty(tlb_outcome);
        let (mut itlb_stall, mut stlb_stall) = (0, 0);
        match tlb_outcome {
            TlbOutcome::L1 => {}
            TlbOutcome::Stlb => {
                self.stats.per_core[core].tlb.itlb_misses += 1;
                self.stats.per_core[core].tlb.itlb_miss_cycles += tlb_pen as u64;
                itlb_stall = tlb_pen;
            }
            TlbOutcome::Walk => {
                self.stats.per_core[core].tlb.itlb_misses += 1;
                self.stats.per_core[core].tlb.stlb_misses += 1;
                self.stats.per_core[core].tlb.stlb_miss_cycles += tlb_pen as u64;
                stlb_stall = tlb_pen;
            }
        }

        // L1-I.
        let mut hit = false;
        if let Some(meta) = self.l1i[core].lookup(line) {
            hit = true;
            if meta.prefetched {
                meta.prefetched = false;
                self.stats.per_core[core].prefetch.useful_l1i += 1;
            }
        }
        self.stats.per_core[core].l1i.record(class, hit);
        if hit {
            return FetchOutcome {
                latency: self.cfg.l1i.latency + tlb_pen,
                level: ServiceLevel::L1,
                offcore: false,
                itlb_stall,
                stlb_stall,
            };
        }

        let (lat, level, _) = self.access_l2(core, privilege, true, false, line, addr, now, false);
        self.fill_l1(core, true, line, false, false, now);

        // Next-line instruction prefetch on the L1-I miss (degree 2: the
        // frontend runs ahead of sequential fetch within a function, but
        // complex control transfers between functions still miss — the
        // inadequacy §4.1 describes).
        if self.cfg.prefetch.instr_next_line {
            self.stats.per_core[core].prefetch.issued_instr += 2;
            self.prefetch_line(core, privilege, true, next_line(line), now, true);
            self.prefetch_line(core, privilege, true, next_line(next_line(line)), now, true);
        }

        FetchOutcome {
            latency: lat + tlb_pen,
            level,
            offcore: level.is_offcore(),
            itlb_stall,
            stlb_stall,
        }
    }

    /// Performs a data access at `addr`. `pc` trains the stride prefetcher.
    pub fn data_access(
        &mut self,
        core: usize,
        privilege: Privilege,
        addr: u64,
        is_store: bool,
        pc: u64,
        now: u64,
    ) -> DataOutcome {
        let line = addr >> 6;
        let class = AccessClass::new(false, privilege);

        // DTLB.
        let tlb_outcome = self.tlbs[core].translate_data(addr >> 12);
        let tlb_pen = self.tlbs[core].penalty(tlb_outcome);
        let mut stlb_stall = 0;
        match tlb_outcome {
            TlbOutcome::L1 => {}
            TlbOutcome::Stlb => self.stats.per_core[core].tlb.dtlb_misses += 1,
            TlbOutcome::Walk => {
                self.stats.per_core[core].tlb.dtlb_misses += 1;
                self.stats.per_core[core].tlb.stlb_misses += 1;
                self.stats.per_core[core].tlb.stlb_miss_cycles += tlb_pen as u64;
                stlb_stall = tlb_pen;
            }
        }

        // L1-D.
        let mut present = false;
        let mut writable = false;
        if let Some(meta) = self.l1d[core].lookup(line) {
            present = true;
            writable = meta.writable;
            if meta.prefetched {
                meta.prefetched = false;
                self.stats.per_core[core].prefetch.useful_l1d += 1;
            }
            if is_store && meta.writable {
                meta.dirty = true;
            }
        }
        self.stats.per_core[core].l1d.record(class, present);
        if present && (!is_store || writable) {
            return DataOutcome {
                latency: self.cfg.l1d.latency + tlb_pen,
                level: ServiceLevel::L1,
                offcore: false,
                rw_shared: false,
                stlb_stall,
            };
        }
        let upgrade = present; // store hit on a shared (non-writable) line
        if upgrade {
            self.stats.per_core[core].upgrades += 1;
        }

        // DCU streamer: next-line into the L1-D when the L1-D miss stream
        // is ascending (two consecutive misses on adjacent lines arm it;
        // random misses leave it quiet).
        if !upgrade && self.cfg.prefetch.dcu_streamer {
            let ascending = line == self.dcu_last_miss[core].wrapping_add(1);
            self.dcu_last_miss[core] = line;
            if ascending {
                self.stats.per_core[core].prefetch.issued_dcu += 1;
                self.prefetch_line(core, privilege, false, next_line(line), now, true);
            }
        }

        let (lat, level, rw_shared) =
            self.access_l2(core, privilege, false, is_store, line, pc, now, upgrade);

        if upgrade {
            if let Some(meta) = self.l1d[core].peek_mut(line) {
                meta.writable = true;
                meta.dirty = true;
            }
        } else {
            self.fill_l1(core, false, line, is_store, false, now);
        }

        DataOutcome {
            latency: lat + tlb_pen,
            level,
            offcore: level.is_offcore(),
            rw_shared,
            stlb_stall,
        }
    }

    // ------------------------------------------------------------------
    // Inner levels
    // ------------------------------------------------------------------

    /// L2 lookup and, on a miss (or ownership upgrade), LLC/remote/DRAM.
    #[allow(clippy::too_many_arguments)]
    fn access_l2(
        &mut self,
        core: usize,
        privilege: Privilege,
        is_instr: bool,
        want_write: bool,
        line: u64,
        pc: u64,
        now: u64,
        upgrade: bool,
    ) -> (u32, ServiceLevel, bool) {
        let class = AccessClass::new(is_instr, privilege);

        let mut present = false;
        let mut writable = false;
        if let Some(meta) = self.l2[core].lookup(line) {
            present = true;
            writable = meta.writable;
            if meta.prefetched {
                meta.prefetched = false;
                self.stats.per_core[core].prefetch.useful_l2 += 1;
            }
        }
        self.stats.per_core[core].l2.record(class, present);
        if present && (!want_write || writable) {
            return (self.cfg.l2.latency, ServiceLevel::L2, false);
        }

        // Train the stride prefetcher on demand data accesses that reach
        // the L2 (i.e. the L1-D miss stream).
        let mut pf = std::mem::take(&mut self.pf_buf);
        pf.clear();
        let mut adjacent_idx: Option<usize> = None;
        if !is_instr && !upgrade && self.cfg.prefetch.hw_stride {
            self.stride[core].on_access(pc, line, &mut pf);
            self.stats.per_core[core].prefetch.issued_stride += pf.len() as u64;
        }

        let (lat, level, rw_shared) =
            self.access_llc(core, privilege, is_instr, want_write, line, now, false);

        if present {
            // Upgrade: grant ownership in place.
            if let Some(meta) = self.l2[core].peek_mut(line) {
                meta.writable = true;
            }
        } else {
            self.fill_l2(core, line, want_write, false, now);
            // Adjacent-line prefetch triggers on L2 misses.
            if self.cfg.prefetch.adjacent_line {
                self.stats.per_core[core].prefetch.issued_adjacent += 1;
                adjacent_idx = Some(pf.len());
                pf.push(adjacent_line(line));
            }
        }

        // Execute collected prefetches into the L2. The stride prefetcher
        // may run ahead to DRAM; the adjacent-line prefetcher is
        // LLC-bounded (its companion line is dropped on an LLC miss rather
        // than generating off-chip traffic).
        for (i, &target) in pf.iter().enumerate() {
            let llc_bound = Some(i) == adjacent_idx;
            self.prefetch_line_bounded(core, privilege, is_instr, target, now, false, llc_bound);
        }
        self.pf_buf = pf;

        (lat, level, rw_shared)
    }

    /// Local LLC, remote snoop, or DRAM. Fills the local LLC.
    #[allow(clippy::too_many_arguments)]
    fn access_llc(
        &mut self,
        core: usize,
        privilege: Privilege,
        is_instr: bool,
        want_write: bool,
        line: u64,
        now: u64,
        is_prefetch: bool,
    ) -> (u32, ServiceLevel, bool) {
        let socket = self.socket_of(core);
        let class = AccessClass::new(is_instr, privilege);
        let my_bit = self.local_bit(core);
        let mut rw_shared = false;

        // --- Local LLC probe ---
        let mut local_hit = false;
        let mut invalidate_mask: u16 = 0;
        let mut downgrade_mask: u16 = 0;
        if let Some(meta) = self.llcs[socket].lookup(line) {
            local_hit = true;
            if !is_prefetch && !is_instr {
                if let Some(w) = meta.fresh_writer {
                    if w as usize != core {
                        rw_shared = true;
                        if !want_write {
                            // The write has now been observed; the next
                            // reference is not "recently written by remote".
                            meta.fresh_writer = None;
                            downgrade_mask = meta.sharers & !my_bit;
                        }
                    }
                }
            }
            if want_write {
                invalidate_mask = meta.sharers & !my_bit;
                meta.sharers = my_bit;
                // Core ids are bounded by the sharer bitmask width (<= 64),
                // far inside u8 range.
                #[allow(clippy::cast_possible_truncation)]
                {
                    meta.fresh_writer = Some(core as u8);
                }
                meta.dirty = true;
                meta.writable = true;
            } else {
                meta.sharers |= my_bit;
            }
            if !is_prefetch && meta.prefetched {
                meta.prefetched = false;
            }
        }
        if !is_prefetch {
            self.stats.per_core[core].llc.record(class, local_hit);
            if rw_shared {
                self.stats.per_core[core].rw_shared[usize::from(privilege.is_kernel())] += 1;
            }
        }
        if local_hit {
            for c in self.cores_in_mask(socket, invalidate_mask).collect::<Vec<_>>() {
                self.l1d[c].invalidate(line);
                self.l1i[c].invalidate(line);
                self.l2[c].invalidate(line);
            }
            for c in self.cores_in_mask(socket, downgrade_mask).collect::<Vec<_>>() {
                if let Some(m) = self.l1d[c].peek_mut(line) {
                    m.writable = false;
                }
                if let Some(m) = self.l2[c].peek_mut(line) {
                    m.writable = false;
                }
            }
            return (self.cfg.llc.latency, ServiceLevel::LocalLlc, rw_shared);
        }

        // --- Remote socket snoop ---
        let mut remote_state = None;
        for rs in (0..self.n_sockets).filter(|rs| *rs != socket) {
            let mut found = false;
            let mut remote_invalidate: u16 = 0;
            if let Some(meta) = self.llcs[rs].peek_mut(line) {
                found = true;
                if !is_prefetch && !is_instr {
                    if let Some(w) = meta.fresh_writer {
                        if w as usize != core {
                            rw_shared = true;
                        }
                    }
                }
                if want_write {
                    remote_invalidate = meta.sharers;
                } else {
                    meta.fresh_writer = None;
                    meta.writable = false;
                }
            }
            if found {
                if want_write {
                    self.llcs[rs].invalidate(line);
                    for c in self.cores_in_mask(rs, remote_invalidate).collect::<Vec<_>>() {
                        self.l1d[c].invalidate(line);
                        self.l1i[c].invalidate(line);
                        self.l2[c].invalidate(line);
                    }
                }
                remote_state = Some(rs);
                break;
            }
        }

        let (lat, level) = if remote_state.is_some() {
            (self.cfg.llc.latency + self.cfg.remote_snoop_extra, ServiceLevel::RemoteLlc)
        } else {
            // Warming accesses bypass the DRAM channel timers and the
            // bandwidth regulator (their fake pacing would corrupt queueing
            // and window state for the next detailed window), but the fault
            // stream is event-indexed over hierarchy events: the roll is
            // consumed either way so detailed and warmed runs see the same
            // cursor.
            let mut dram_lat = if self.warming {
                0
            } else {
                let throttle = match &mut self.regulator {
                    Some(r) => r.admit(self.tenants[core] as usize, 64, now),
                    None => 0,
                };
                // Throttle delays are bounded by a handful of windows; the
                // u32 latency domain comfortably holds them.
                #[allow(clippy::cast_possible_truncation)]
                self.dram.read(line, now + throttle).saturating_add(throttle as u32)
            };
            if let Some(f) = &mut self.fault {
                dram_lat = dram_lat.saturating_add(f.perturb_dram());
            }
            self.stats.per_core[core].dram_bytes[usize::from(privilege.is_kernel())] += 64;
            (self.cfg.llc.latency.saturating_add(dram_lat), ServiceLevel::Dram)
        };

        // The access itself was already recorded in the local-probe stage;
        // only sharing discovered at the remote socket is recorded here.
        if !is_prefetch && rw_shared {
            self.stats.per_core[core].rw_shared[usize::from(privilege.is_kernel())] += 1;
        }

        // Fill the local LLC, allocating only inside the tenant's way
        // partition when one is configured. Core ids are bounded by the
        // sharer bitmask width (<= 64), far inside u8 range.
        let tenant = self.tenants[core];
        let mask = self.way_mask_of(tenant);
        #[allow(clippy::cast_possible_truncation)]
        let meta = LineMeta {
            dirty: want_write,
            writable: want_write,
            prefetched: is_prefetch,
            sharers: my_bit,
            fresh_writer: if want_write { Some(core as u8) } else { None },
            tenant,
        };
        if let Some(evicted) = self.llcs[socket].fill_masked(line, meta, mask) {
            self.evict_llc_victim(core, socket, evicted, privilege, now);
        }

        (lat, level, rw_shared)
    }

    /// Handles an LLC eviction: inclusive back-invalidation of private
    /// copies plus the writeback, if any copy was dirty.
    fn evict_llc_victim(
        &mut self,
        core: usize,
        socket: usize,
        evicted: crate::cache::Evicted,
        privilege: Privilege,
        now: u64,
    ) {
        let mut dirty = evicted.meta.dirty;
        for c in self.cores_in_mask(socket, evicted.meta.sharers).collect::<Vec<_>>() {
            if let Some(m) = self.l1d[c].invalidate(evicted.line) {
                dirty |= m.dirty;
            }
            self.l1i[c].invalidate(evicted.line);
            if let Some(m) = self.l2[c].invalidate(evicted.line) {
                dirty |= m.dirty;
            }
        }
        if dirty {
            if !self.warming {
                self.dram.write(evicted.line, now);
                // Writebacks are charged against the *evicting* tenant's
                // bandwidth budget but proceed asynchronously — the delay
                // is folded into window occupancy, not demand latency.
                if let Some(r) = &mut self.regulator {
                    let _ = r.admit(self.tenants[core] as usize, 64, now);
                }
            }
            self.stats.per_core[core].dram_bytes[usize::from(privilege.is_kernel())] += 64;
        }
    }

    /// Fills `line` into the private L2, handling dirty victims.
    fn fill_l2(&mut self, core: usize, line: u64, writable: bool, prefetched: bool, now: u64) {
        let meta = LineMeta {
            dirty: false,
            writable,
            prefetched,
            sharers: 0,
            fresh_writer: None,
            tenant: self.tenants[core],
        };
        if let Some(evicted) = self.l2[core].fill(line, meta) {
            if evicted.meta.dirty {
                self.writeback_to_llc(core, evicted.line, now);
            }
        }
    }

    /// Fills `line` into an L1, handling dirty victims (written through to
    /// the L2, or to the LLC if the L2 no longer holds the line).
    fn fill_l1(
        &mut self,
        core: usize,
        is_instr: bool,
        line: u64,
        writable: bool,
        prefetched: bool,
        now: u64,
    ) {
        let meta = LineMeta {
            dirty: false,
            writable,
            prefetched,
            sharers: 0,
            fresh_writer: None,
            tenant: self.tenants[core],
        };
        let cache = if is_instr { &mut self.l1i[core] } else { &mut self.l1d[core] };
        if let Some(evicted) = cache.fill(line, meta) {
            if evicted.meta.dirty {
                if let Some(m) = self.l2[core].peek_mut(evicted.line) {
                    m.dirty = true;
                } else {
                    self.writeback_to_llc(core, evicted.line, now);
                }
            }
        }
    }

    /// Marks `line` dirty in the local LLC, or writes it to DRAM if the
    /// LLC no longer holds it.
    fn writeback_to_llc(&mut self, core: usize, line: u64, now: u64) {
        let socket = self.socket_of(core);
        if let Some(m) = self.llcs[socket].peek_mut(line) {
            m.dirty = true;
        } else {
            if !self.warming {
                self.dram.write(line, now);
                if let Some(r) = &mut self.regulator {
                    let _ = r.admit(self.tenants[core] as usize, 64, now);
                }
            }
            // Attribution of stale writebacks: charged as user traffic to
            // the evicting core (privilege of the original writer is gone).
            self.stats.per_core[core].dram_bytes[0] += 64;
        }
    }

    /// Executes one prefetch of `line` into the L2 (and the L1 of the
    /// requesting side when `into_l1` is set). Prefetches consume DRAM
    /// bandwidth and can pollute, but never charge demand latency.
    fn prefetch_line(
        &mut self,
        core: usize,
        privilege: Privilege,
        is_instr: bool,
        line: u64,
        now: u64,
        into_l1: bool,
    ) {
        self.prefetch_line_bounded(core, privilege, is_instr, line, now, into_l1, false);
    }

    /// [`Self::prefetch_line`] with an optional LLC bound: when set, the
    /// prefetch is dropped if the line is not already LLC-resident,
    /// avoiding off-chip pollution.
    #[allow(clippy::too_many_arguments)]
    fn prefetch_line_bounded(
        &mut self,
        core: usize,
        privilege: Privilege,
        is_instr: bool,
        line: u64,
        now: u64,
        into_l1: bool,
        llc_bound: bool,
    ) {
        if let Some(f) = &mut self.fault {
            if f.drop_prefetch() {
                return;
            }
        }
        if llc_bound {
            let socket = self.socket_of(core);
            if self.llcs[socket].peek(line).is_none() {
                return;
            }
        }
        let in_l1 = if is_instr {
            self.l1i[core].peek(line).is_some()
        } else {
            self.l1d[core].peek(line).is_some()
        };
        if in_l1 {
            return;
        }
        if self.l2[core].peek(line).is_none() {
            let _ = self.access_llc(core, privilege, is_instr, false, line, now, true);
            self.fill_l2(core, line, false, true, now);
        }
        if into_l1 {
            // DCU streamer and instruction next-line prefetches land in the
            // L1 of the requesting side.
            self.fill_l1(core, is_instr, line, false, true, now);
        }
    }
}

/// Writes every counter of one core's [`CoreMemStats`].
fn encode_core_stats(e: &mut cs_trace::snap::Enc, s: &CoreMemStats) {
    s.encode_snap(e);
}

fn restore_core_stats(
    d: &mut cs_trace::snap::Dec<'_>,
    s: &mut CoreMemStats,
) -> Result<(), cs_trace::snap::SnapError> {
    s.restore_snap(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MemSysConfig, PrefetchConfig, QosConfig};

    fn small_system(n_cores: usize) -> MemorySystem {
        let cfg = MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
        MemorySystem::new(cfg, n_cores)
    }

    #[test]
    fn first_access_goes_to_dram_then_hits_l1() {
        let mut m = small_system(1);
        let a = m.data_access(0, Privilege::User, 0x1000_0000, false, 0x400000, 0);
        assert_eq!(a.level, ServiceLevel::Dram);
        assert!(a.offcore);
        let b = m.data_access(0, Privilege::User, 0x1000_0000, false, 0x400000, 10);
        assert_eq!(b.level, ServiceLevel::L1);
        assert!(!b.offcore);
        assert!(b.latency < a.latency);
    }

    #[test]
    fn latencies_are_ordered_by_level() {
        let mut m = small_system(1);
        let dram = m.data_access(0, Privilege::User, 0x2000_0000, false, 0, 0).latency;
        // Evict from L1 by filling the set; simpler: access a second line
        // then re-access — still L1. Instead check L1 < LLC < DRAM via
        // fresh lines and config.
        let l1 = m.data_access(0, Privilege::User, 0x2000_0000, false, 0, 0).latency;
        assert!(l1 < dram);
    }

    #[test]
    fn ifetch_miss_returns_l2_instr_level() {
        let mut m = small_system(1);
        let a = m.ifetch(0, Privilege::User, 0x40_0000, 0);
        assert_eq!(a.level, ServiceLevel::Dram);
        let b = m.ifetch(0, Privilege::User, 0x40_0000, 5);
        assert_eq!(b.level, ServiceLevel::L1);
        // Evict only the L1-I line: fill conflicting lines in the same set.
        // 64 sets in L1-I: lines differing by 64 map to the same set.
        for k in 1..=8u64 {
            m.ifetch(0, Privilege::User, 0x40_0000 + k * 64 * 64, 10 + k);
        }
        let c = m.ifetch(0, Privilege::User, 0x40_0000, 100);
        assert_eq!(c.level, ServiceLevel::L2, "line should still be in L2");
    }

    #[test]
    fn store_to_shared_line_upgrades_offcore() {
        let mut m = small_system(2);
        let addr = 0x3000_0000;
        // Core 0 reads (line becomes shared/clean in core 0's caches).
        m.data_access(0, Privilege::User, addr, false, 0, 0);
        // Core 1 reads the same line (both sharers now).
        let r1 = m.data_access(1, Privilege::User, addr, false, 0, 1);
        assert_eq!(r1.level, ServiceLevel::LocalLlc);
        // Core 0 stores: upgrade must go off-core even though data is in L1.
        let w = m.data_access(0, Privilege::User, addr, true, 0, 2);
        assert!(w.offcore, "RFO must be visible off-core");
        assert_eq!(m.stats().per_core[0].upgrades, 1);
        // Core 1's copy was invalidated.
        let r2 = m.data_access(1, Privilege::User, addr, false, 0, 3);
        assert!(r2.level > ServiceLevel::L2, "core 1 copy must be invalidated, got {:?}", r2.level);
        assert!(r2.rw_shared, "core 1 reads a line freshly written by core 0");
    }

    #[test]
    fn rw_sharing_detected_once_per_write() {
        let mut m = small_system(2);
        let addr = 0x4000_0000;
        m.data_access(0, Privilege::User, addr, true, 0, 0); // core 0 writes
        let r1 = m.data_access(1, Privilege::User, addr, false, 0, 1);
        assert!(r1.rw_shared);
        // Second read by core 1 hits its own L1 — not shared.
        let r2 = m.data_access(1, Privilege::User, addr, false, 0, 2);
        assert!(!r2.rw_shared);
        assert_eq!(m.stats().per_core[1].rw_shared[0], 1);
    }

    #[test]
    fn cross_socket_read_snoops_remote_llc() {
        let mut m = small_system(12); // 2 sockets of 6
        let addr = 0x5000_0000;
        m.data_access(0, Privilege::User, addr, true, 0, 0); // socket 0 writes
        let r = m.data_access(6, Privilege::User, addr, false, 0, 1); // socket 1 reads
        assert_eq!(r.level, ServiceLevel::RemoteLlc);
        assert!(r.rw_shared);
        assert!(r.offcore);
    }

    #[test]
    fn inclusion_back_invalidates_private_copies() {
        // Tiny LLC to force evictions quickly.
        let cfg = MemSysConfig {
            prefetch: PrefetchConfig::none(),
            llc: crate::config::CacheConfig { size_bytes: 64 * 64, assoc: 1, latency: 39 },
            ..MemSysConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 1);
        let addr = 0x1_0000;
        m.data_access(0, Privilege::User, addr, false, 0, 0);
        assert_eq!(m.data_access(0, Privilege::User, addr, false, 0, 1).level, ServiceLevel::L1);
        // Evict the LLC set containing `addr` (64 sets, so +64*64 bytes
        // collides).
        m.data_access(0, Privilege::User, addr + 64 * 64, false, 0, 2);
        // The L1 copy must be gone (inclusive hierarchy).
        let r = m.data_access(0, Privilege::User, addr, false, 0, 3);
        assert_eq!(r.level, ServiceLevel::Dram, "back-invalidation must purge private copies");
    }

    #[test]
    fn dirty_evictions_write_back_to_dram() {
        let cfg = MemSysConfig {
            prefetch: PrefetchConfig::none(),
            llc: crate::config::CacheConfig { size_bytes: 64 * 64, assoc: 1, latency: 39 },
            ..MemSysConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 1);
        m.data_access(0, Privilege::User, 0x1_0000, true, 0, 0); // dirty line
        let w0 = m.dram_stats().writes;
        m.data_access(0, Privilege::User, 0x1_0000 + 64 * 64, false, 0, 1); // evict it
        assert_eq!(m.dram_stats().writes, w0 + 1);
    }

    #[test]
    fn adjacent_line_prefetcher_fills_companion() {
        let cfg = MemSysConfig {
            prefetch: PrefetchConfig {
                adjacent_line: true,
                hw_stride: false,
                dcu_streamer: false,
                instr_next_line: false,
            },
            ..MemSysConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 2);
        // Core 1 warms the companion line into the shared LLC.
        m.data_access(1, Privilege::User, 0x9000_0040, false, 0x400100, 0);
        // Core 0 misses on the pair line; the adjacent-line prefetcher
        // pulls the LLC-resident companion into core 0's L2.
        m.data_access(0, Privilege::User, 0x9000_0000, false, 0x400100, 1);
        assert!(m.stats().per_core[0].prefetch.issued_adjacent >= 1);
        let r = m.data_access(0, Privilege::User, 0x9000_0040, false, 0x400100, 2);
        assert_eq!(r.level, ServiceLevel::L2);
        assert_eq!(m.stats().per_core[0].prefetch.useful_l2, 1);
        // The prefetcher is LLC-bounded: a companion absent from the LLC
        // generates no off-chip traffic.
        let reads0 = m.dram_stats().reads;
        m.data_access(0, Privilege::User, 0xF000_0000, false, 0x400100, 3);
        assert_eq!(m.dram_stats().reads, reads0 + 1, "only the demand line may read DRAM");
    }

    #[test]
    fn stride_prefetcher_covers_sequential_streams() {
        let cfg = MemSysConfig {
            prefetch: PrefetchConfig {
                adjacent_line: false,
                hw_stride: true,
                dcu_streamer: false,
                instr_next_line: false,
            },
            ..MemSysConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 1);
        let pc = 0x400200;
        let mut dram_hits = 0;
        for i in 0..64u64 {
            let r = m.data_access(0, Privilege::User, 0xA000_0000 + i * 64, false, pc, i * 400);
            if r.level == ServiceLevel::Dram {
                dram_hits += 1;
            }
        }
        assert!(m.stats().per_core[0].prefetch.issued_stride > 0);
        assert!(
            dram_hits < 40,
            "stride prefetcher should cover much of a sequential stream, {dram_hits}/64 went to DRAM"
        );
        assert!(m.stats().per_core[0].prefetch.useful_l2 > 10);
    }

    #[test]
    fn dcu_streamer_prefetches_next_line_into_l1() {
        let cfg = MemSysConfig {
            prefetch: PrefetchConfig {
                adjacent_line: false,
                hw_stride: false,
                dcu_streamer: true,
                instr_next_line: false,
            },
            ..MemSysConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 1);
        // Two ascending misses arm the streamer; the second one prefetches
        // the third line.
        m.data_access(0, Privilege::User, 0xB000_0000, false, 0, 0);
        assert_eq!(m.stats().per_core[0].prefetch.issued_dcu, 0, "first miss must not fire");
        m.data_access(0, Privilege::User, 0xB000_0040, false, 0, 1);
        assert_eq!(m.stats().per_core[0].prefetch.issued_dcu, 1);
        let r = m.data_access(0, Privilege::User, 0xB000_0080, false, 0, 2);
        assert_eq!(r.level, ServiceLevel::L1, "next line must be L1-resident");
        assert_eq!(m.stats().per_core[0].prefetch.useful_l1d, 1);
    }

    #[test]
    fn tlb_misses_accumulate_stall_cycles() {
        let mut m = small_system(1);
        // Touch many distinct pages.
        for p in 0..2000u64 {
            m.data_access(0, Privilege::User, p * 4096, false, 0, p);
        }
        let t = &m.stats().per_core[0].tlb;
        assert!(t.dtlb_misses > 0);
        assert!(t.stlb_misses > 0);
        assert!(t.stlb_miss_cycles > 0);
    }

    #[test]
    fn instruction_fetches_do_not_count_as_data_sharing() {
        let mut m = small_system(2);
        let addr = 0xC000_0000u64;
        m.data_access(0, Privilege::User, addr, true, 0, 0);
        // Instruction fetch of the same line by core 1: not a *data* ref.
        let f = m.ifetch(1, Privilege::User, addr, 1);
        assert!(f.offcore);
        assert_eq!(m.stats().per_core[1].rw_shared, [0, 0]);
    }

    #[test]
    fn disabled_prefetchers_issue_nothing() {
        let mut m = small_system(1);
        for i in 0..200u64 {
            m.data_access(0, Privilege::User, 0xE000_0000 + i * 64, false, 0x40_0000, i);
            m.ifetch(0, Privilege::User, 0x40_0000 + i * 64, i);
        }
        let p = &m.stats().per_core[0].prefetch;
        assert_eq!(
            (p.issued_adjacent, p.issued_stride, p.issued_dcu, p.issued_instr),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn cross_socket_write_invalidates_the_remote_copy() {
        let mut m = small_system(12);
        let addr = 0x6100_0000u64;
        // Socket 1 (core 6) reads; socket 0 (core 0) then writes.
        m.data_access(6, Privilege::User, addr, false, 0, 0);
        m.data_access(0, Privilege::User, addr, true, 0, 1);
        // Core 6's copy is gone; its re-read must leave the core and see
        // the fresh write.
        let r = m.data_access(6, Privilege::User, addr, false, 0, 2);
        assert!(r.offcore, "remote invalidation must purge core 6's copies");
        assert!(r.rw_shared, "and the re-read observes core 0's write");
    }

    #[test]
    fn kernel_accesses_are_classified_separately() {
        let mut m = small_system(1);
        m.data_access(0, Privilege::Kernel, 0xFFFF_9000_0000_0100, false, 0, 0);
        m.data_access(0, Privilege::User, 0x1000, false, 0, 1);
        m.ifetch(0, Privilege::Kernel, 0xFFFF_8000_0000_0000, 2);
        let s = &m.stats().per_core[0];
        assert_eq!(s.l1d.accesses[AccessClass::DataKernel.idx()], 1);
        assert_eq!(s.l1d.accesses[AccessClass::DataUser.idx()], 1);
        assert_eq!(s.l1i.accesses[AccessClass::InstrKernel.idx()], 1);
    }

    #[test]
    fn tlb_stall_components_are_reported() {
        let mut m = small_system(1);
        // First touch of a page: full walk, reported as STLB stall.
        let a = m.data_access(0, Privilege::User, 0x5555_0000, false, 0, 0);
        assert!(a.stlb_stall > 0, "first touch must walk");
        // Second touch of the same page: no TLB stall.
        let b = m.data_access(0, Privilege::User, 0x5555_0008, false, 0, 1);
        assert_eq!(b.stlb_stall, 0);
        assert!(b.latency < a.latency);
    }

    #[test]
    fn upgrades_do_not_inflate_l1_misses() {
        let mut m = small_system(2);
        let addr = 0x7100_0000u64;
        m.data_access(0, Privilege::User, addr, false, 0, 0); // core 0 read
        m.data_access(1, Privilege::User, addr, false, 0, 1); // core 1 read (shared)
        m.data_access(0, Privilege::User, addr, true, 0, 2); // core 0 upgrade
        let s = &m.stats().per_core[0];
        assert_eq!(s.upgrades, 1);
        // Core 0: one cold miss (the read) and one hit (the upgrade found
        // its data in the L1; only ownership travelled off-core).
        assert_eq!(s.l1d.total_accesses(), 2);
        assert_eq!(s.l1d.total_hits(), 1, "the upgrade still found its data in the L1");
    }

    #[test]
    fn export_stats_into_includes_dram_totals_and_reuses_the_buffer() {
        let mut m = small_system(1);
        m.data_access(0, Privilege::User, 0x9999_0000, false, 0, 0);
        let mut snap = MemStats::default();
        m.export_stats_into(&mut snap);
        assert_eq!(snap.dram, m.dram_stats());
        assert!(snap.dram.reads >= 1);
        assert_eq!(snap.per_core[0].l1d.total_accesses(), 1);
        // A second snapshot into the same buffer stays consistent (and
        // reuses the per-core allocation rather than cloning afresh).
        m.data_access(0, Privilege::User, 0x9999_0000, false, 0, 1);
        m.export_stats_into(&mut snap);
        assert_eq!(snap.per_core[0].l1d.total_accesses(), 2);
        assert_eq!(snap.dram, m.dram_stats());
    }

    #[test]
    fn counters_track_levels_consistently() {
        let mut m = small_system(1);
        for i in 0..100u64 {
            m.data_access(0, Privilege::User, 0xD000_0000 + i * 8, false, 0, i);
        }
        let s = &m.stats().per_core[0];
        let l1_acc = s.l1d.total_accesses();
        let l1_hit = s.l1d.total_hits();
        let l2_acc = s.l2.total_accesses();
        assert_eq!(l1_acc, 100);
        assert_eq!(l1_acc - l1_hit, l2_acc, "every L1 miss must access the L2");
        let llc_acc = s.llc.total_accesses();
        assert_eq!(l2_acc - s.l2.total_hits(), llc_acc);
    }

    #[test]
    fn fault_plan_perturbs_dram_latency() {
        use crate::fault::FaultPlan;
        let mut clean = small_system(1);
        let cfg = MemSysConfig {
            prefetch: PrefetchConfig::none(),
            fault: Some(FaultPlan::dram_jitter(10_000, 1.0, 1)),
            ..MemSysConfig::default()
        };
        let mut faulty = MemorySystem::new(cfg, 1);
        let a = clean.data_access(0, Privilege::User, 0x1000_0000, false, 0x400000, 0);
        let b = faulty.data_access(0, Privilege::User, 0x1000_0000, false, 0x400000, 0);
        assert_eq!(a.level, ServiceLevel::Dram);
        assert_eq!(b.level, ServiceLevel::Dram);
        assert_eq!(b.latency, a.latency + 10_000, "rate-1.0 plan must hit every DRAM read");
        assert_eq!(clean.fault_counters(), None);
        assert_eq!(faulty.fault_counters().expect("plan active").perturbed_dram_reads, 1);
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical_and_behavior_preserving() {
        use crate::fault::FaultPlan;
        // Prefetchers on and a fault plan active: every snapshotted
        // component carries non-trivial state.
        let cfg = MemSysConfig {
            fault: Some(FaultPlan::prefetch_drops(0.25, 11)),
            ..MemSysConfig::default()
        };
        let mut live = MemorySystem::new(cfg.clone(), 4);
        for i in 0..3_000u64 {
            let core = (i % 4) as usize;
            let priv_ = if i % 7 == 0 { Privilege::Kernel } else { Privilege::User };
            live.data_access(core, priv_, 0x1000_0000 + (i % 512) * 64, i % 3 == 0, 0x40_0000 + i * 4, i * 2);
            live.ifetch(core, priv_, 0x40_0000 + (i % 128) * 64, i * 2 + 1);
        }

        let mut enc = cs_trace::snap::Enc::new();
        live.encode_snap(&mut enc);
        let bytes = enc.buf.clone();

        let mut restored = MemorySystem::new(cfg, 4);
        let mut dec = cs_trace::snap::Dec::new(&bytes);
        restored.restore_snap(&mut dec).expect("restore");
        dec.finish().expect("no trailing bytes");

        // Re-encoding the restored system reproduces the snapshot bytes.
        let mut enc2 = cs_trace::snap::Enc::new();
        restored.encode_snap(&mut enc2);
        assert_eq!(enc2.buf, bytes, "restore(save(s)) must re-encode identically");

        // And both systems continue identically.
        for i in 0..1_000u64 {
            let core = (i % 4) as usize;
            let a = live.data_access(core, Privilege::User, 0x2000_0000 + i * 64, false, 0x41_0000, 6_000 + i);
            let b = restored.data_access(core, Privilege::User, 0x2000_0000 + i * 64, false, 0x41_0000, 6_000 + i);
            assert_eq!(a, b);
        }
        assert_eq!(live.stats(), restored.stats());
        assert_eq!(live.dram_stats(), restored.dram_stats());
        assert_eq!(live.fault_counters(), restored.fault_counters());
    }

    #[test]
    fn snapshot_restore_rejects_topology_mismatch() {
        let mut a = small_system(2);
        let mut enc = cs_trace::snap::Enc::new();
        a.encode_snap(&mut enc);
        // Wrong core count.
        let mut b = small_system(4);
        let mut dec = cs_trace::snap::Dec::new(&enc.buf);
        match b.restore_snap(&mut dec) {
            Err(cs_trace::snap::SnapError::Mismatch(_)) => {}
            other => panic!("expected Mismatch, got {other:?}"),
        }
        // Fault-plan presence disagreement.
        use crate::fault::FaultPlan;
        let cfg = MemSysConfig {
            prefetch: PrefetchConfig::none(),
            fault: Some(FaultPlan::dram_jitter(10, 0.5, 3)),
            ..MemSysConfig::default()
        };
        let mut c = MemorySystem::new(cfg, 2);
        let mut dec = cs_trace::snap::Dec::new(&enc.buf);
        match c.restore_snap(&mut dec) {
            Err(cs_trace::snap::SnapError::Mismatch(_)) => {}
            other => panic!("expected Mismatch, got {other:?}"),
        }
        let _ = a.data_access(0, Privilege::User, 0x1000, false, 0, 0);
    }

    #[test]
    fn warm_accesses_leave_cache_state_identical_to_detailed() {
        // The functional-warming soundness claim at the memsys level: the
        // same reference sequence, driven once through the demand paths
        // and once through the warming paths, must leave byte-identical
        // cache/TLB/prefetcher state — only DRAM timing may differ.
        let mk = || MemorySystem::new(MemSysConfig::default(), 2);
        let mut detailed = mk();
        let mut warmed = mk();
        for i in 0..2_000u64 {
            let core = (i % 2) as usize;
            let priv_ = if i % 7 == 0 { Privilege::Kernel } else { Privilege::User };
            let addr = 0x1000_0000 + (i % 777) * 64;
            let pc = 0x40_0000 + (i % 64) * 4;
            detailed.data_access(core, priv_, addr, i % 3 == 0, pc, i);
            detailed.ifetch(core, priv_, pc, i);
            warmed.data_access_warm(core, priv_, addr, i % 3 == 0, pc, i);
            warmed.ifetch_warm(core, priv_, pc, i);
        }
        assert_eq!(detailed.warm_state_digest(), warmed.warm_state_digest());
        // Demand stats are identical too (warming records them; they are
        // zeroed at each measurement-window start anyway).
        assert_eq!(detailed.stats().per_core, warmed.stats().per_core);
        // But warming never touched the DRAM channel books.
        assert_eq!(warmed.dram_stats().reads, 0);
        assert_eq!(warmed.dram_stats().writes, 0);
        assert!(detailed.dram_stats().reads > 0);
    }

    #[test]
    fn widened_memo_stays_sound_under_l1_thrash() {
        // The widened memo records entries after L2-serviced fills, so a
        // line bouncing between L1 and L2 replays on its second touch.
        // Drive an L1-thrashing ping-pong (working set larger than L1,
        // comfortably inside L2, with immediate re-touches that hit the
        // fresh memo) and assert the soundness digest still matches the
        // demand walk exactly, stores included.
        let mk = || MemorySystem::new(MemSysConfig::default(), 1);
        let mut detailed = mk();
        let mut warmed = mk();
        let l1_lines = MemSysConfig::default().l1d.size_bytes / 64;
        for i in 0..6_000u64 {
            // Stride over 4x the L1 capacity so most touches are L2 hits,
            // then touch the same line twice more (memo replays).
            let base = 0x2000_0000 + (i % (l1_lines * 4)) * 64;
            let pc = 0x40_0000 + (i % 2048) * 4;
            for _ in 0..3 {
                detailed.data_access(0, Privilege::User, base, i % 5 == 0, pc, i);
                detailed.ifetch(0, Privilege::User, pc, i);
                warmed.data_access_warm(0, Privilege::User, base, i % 5 == 0, pc, i);
                warmed.ifetch_warm(0, Privilege::User, pc, i);
            }
        }
        assert_eq!(detailed.warm_state_digest(), warmed.warm_state_digest());
        assert_eq!(detailed.stats().per_core, warmed.stats().per_core);
    }

    #[test]
    fn warm_accesses_consume_the_fault_stream_like_demand_accesses() {
        use crate::fault::FaultPlan;
        // One shared RNG feeds DRAM perturbation and prefetch drops; the
        // warming path must consume rolls at exactly the demand rate or a
        // sampled run's post-warming fault cursor would diverge.
        let plan = FaultPlan {
            dram_extra_latency: 150,
            dram_perturb_rate: 0.4,
            prefetch_drop_rate: 0.3,
            seed: 0xABCD,
        };
        let mk = || {
            let cfg = MemSysConfig { fault: Some(plan), ..MemSysConfig::default() };
            MemorySystem::new(cfg, 1)
        };
        let mut detailed = mk();
        let mut warmed = mk();
        for i in 0..1_500u64 {
            let addr = 0x9000_0000 + (i % 500) * 64;
            detailed.data_access(0, Privilege::User, addr, false, 0x40_0000, i);
            warmed.data_access_warm(0, Privilege::User, addr, false, 0x40_0000, i);
        }
        let a = detailed.fault_counters().expect("plan active");
        let b = warmed.fault_counters().expect("plan active");
        assert_eq!(a, b, "fault cursor must advance identically in both paths");
        assert!(a.perturbed_dram_reads > 0);
    }

    #[test]
    fn prefetch_drop_plan_suppresses_prefetches() {
        use crate::fault::FaultPlan;
        let mk = |fault| {
            let cfg = MemSysConfig { fault, ..MemSysConfig::default() };
            MemorySystem::new(cfg, 1)
        };
        let mut clean = mk(None);
        let mut faulty = mk(Some(FaultPlan::prefetch_drops(1.0, 9)));
        // A sequential stream trains the stride/DCU/adjacent-line
        // prefetchers; with a rate-1.0 drop plan none of their issues may
        // touch the hierarchy.
        for m in [&mut clean, &mut faulty] {
            for i in 0..64u64 {
                m.data_access(0, Privilege::User, 0x4000_0000 + i * 64, false, 0x400000, i * 20);
            }
        }
        let dropped = faulty.fault_counters().expect("plan active").dropped_prefetches;
        assert!(dropped > 0, "stream must have provoked prefetch issues");
        let lines_touched = |m: &MemorySystem| m.stats().per_core[0].dram_bytes[0] / 64;
        assert!(
            lines_touched(&faulty) <= lines_touched(&clean),
            "dropping prefetches cannot increase DRAM traffic"
        );
    }

    /// Two tenants, two cores, with the LLC split into disjoint way
    /// halves. Under the partition, no amount of streaming by one tenant
    /// may evict the other tenant's LLC-resident lines.
    #[test]
    fn way_partition_isolates_tenant_llc_occupancy() {
        let cfg = MemSysConfig {
            prefetch: PrefetchConfig::none(),
            qos: QosConfig {
                llc_way_masks: Some(vec![0x00FF, 0xFF00]),
                ..QosConfig::default()
            },
            ..MemSysConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 2);
        m.set_tenant(0, 0);
        m.set_tenant(1, 1);
        // Tenant 0 loads a modest working set.
        for i in 0..256u64 {
            m.data_access(0, Privilege::User, 0x1000_0000 + i * 64, false, 0, i);
        }
        let resident = m.llc_tenant_lines(0);
        assert_eq!(resident, 256);
        // Tenant 1 streams far more than the whole LLC.
        let llc_lines = (12u64 << 20) / 64;
        for i in 0..(llc_lines * 2) {
            m.data_access(1, Privilege::User, 0x8000_0000 + i * 64, false, 0, 1_000 + i);
        }
        assert_eq!(
            m.llc_tenant_lines(0),
            resident,
            "a way-partitioned polluter must not evict the victim tenant's lines"
        );
        // And the polluter is capped at its half of the ways.
        assert!(m.llc_tenant_lines(1) <= llc_lines / 2);
    }

    /// Without a partition the same polluter stream wipes out the victim
    /// tenant's occupancy — the contrast that makes the previous test
    /// meaningful.
    #[test]
    fn unpartitioned_polluter_evicts_the_other_tenant() {
        let mut m = small_system(2);
        m.set_tenant(1, 1);
        for i in 0..256u64 {
            m.data_access(0, Privilege::User, 0x1000_0000 + i * 64, false, 0, i);
        }
        let llc_lines = (12u64 << 20) / 64;
        for i in 0..(llc_lines * 2) {
            m.data_access(1, Privilege::User, 0x8000_0000 + i * 64, false, 0, 1_000 + i);
        }
        assert_eq!(m.llc_tenant_lines(0), 0, "an unpartitioned polluter sweeps the whole LLC");
    }

    /// The throttle delays demand reads once a tenant exhausts its window
    /// budget, and an unthrottled config is untouched.
    #[test]
    fn throttle_defers_reads_beyond_the_window_budget() {
        let qos = QosConfig {
            dram_budgets: Some(vec![128, u64::MAX / 2]),
            dram_budget_window: 100_000,
            ..QosConfig::default()
        };
        let cfg = MemSysConfig { prefetch: PrefetchConfig::none(), qos, ..MemSysConfig::default() };
        let mut throttled = MemorySystem::new(cfg, 1);
        let mut free = small_system(1);
        // Two reads fit the 128-byte budget; the third must wait for the
        // next 100k-cycle window, which dwarfs any DRAM latency.
        for m in [&mut free, &mut throttled] {
            for k in 0..3u64 {
                let out = m.data_access(0, Privilege::User, 0x6000_0000 + k * 1_000_000, false, 0, k);
                assert_eq!(out.level, ServiceLevel::Dram);
            }
        }
        let free_lat = free.data_access(0, Privilege::User, 0x7000_0000, false, 0, 10).latency;
        let thr_lat = throttled.data_access(0, Privilege::User, 0x7000_0000, false, 0, 10).latency;
        assert!(
            thr_lat > free_lat + 50_000,
            "4th read of an exhausted budget must wait for a future window \
             (throttled {thr_lat} vs free {free_lat})"
        );
    }

    /// Functional warming must leave the regulator's window state alone,
    /// exactly as it leaves the DRAM channel timers alone.
    #[test]
    fn warm_accesses_bypass_the_regulator() {
        let qos = QosConfig {
            dram_budgets: Some(vec![64]),
            dram_budget_window: 1_000_000,
            ..QosConfig::default()
        };
        let cfg = MemSysConfig { prefetch: PrefetchConfig::none(), qos, ..MemSysConfig::default() };
        let mut m = MemorySystem::new(cfg, 1);
        // Warm far past the 64-byte budget.
        for i in 0..100u64 {
            m.data_access_warm(0, Privilege::User, 0x5000_0000 + i * 64, false, 0, i);
        }
        // The first detailed read still sees a full budget: no throttle
        // delay on top of the plain DRAM latency.
        let lat = m.data_access(0, Privilege::User, 0x9000_0000, false, 0, 200).latency;
        let mut plain = small_system(1);
        let base = plain.data_access(0, Privilege::User, 0x9000_0000, false, 0, 200).latency;
        assert_eq!(lat, base, "warming must not consume regulator budget");
    }

    /// Regulator window state survives a snapshot/restore round trip, and
    /// the restored system keeps deferring exactly like the live one.
    #[test]
    fn snapshot_roundtrip_preserves_regulator_state() {
        let qos = QosConfig {
            dram_budgets: Some(vec![128]),
            dram_budget_window: 100_000,
            ..QosConfig::default()
        };
        let cfg = MemSysConfig { prefetch: PrefetchConfig::none(), qos, ..MemSysConfig::default() };
        let mut live = MemorySystem::new(cfg.clone(), 1);
        for k in 0..3u64 {
            live.data_access(0, Privilege::User, 0x6000_0000 + k * 1_000_000, false, 0, k);
        }
        let mut enc = cs_trace::snap::Enc::new();
        live.encode_snap(&mut enc);
        let mut restored = MemorySystem::new(cfg, 1);
        let mut dec = cs_trace::snap::Dec::new(&enc.buf);
        restored.restore_snap(&mut dec).expect("restore");
        dec.finish().expect("no trailing bytes");
        let a = live.data_access(0, Privilege::User, 0x7000_0000, false, 0, 10).latency;
        let b = restored.data_access(0, Privilege::User, 0x7000_0000, false, 0, 10).latency;
        assert_eq!(a, b, "restored regulator must defer identically to the live one");
        assert!(a > 50_000, "the post-roundtrip read should still be throttled");
    }

    /// A tenant-count mismatch between snapshot and config is rejected,
    /// mirroring the fault-plan presence guards.
    #[test]
    fn snapshot_with_regulator_needs_matching_config() {
        let qos = QosConfig {
            dram_budgets: Some(vec![128]),
            dram_budget_window: 100_000,
            ..QosConfig::default()
        };
        let cfg = MemSysConfig { prefetch: PrefetchConfig::none(), qos, ..MemSysConfig::default() };
        let live = MemorySystem::new(cfg, 1);
        let mut enc = cs_trace::snap::Enc::new();
        live.encode_snap(&mut enc);
        let mut plain = small_system(1);
        let mut dec = cs_trace::snap::Dec::new(&enc.buf);
        match plain.restore_snap(&mut dec) {
            Err(cs_trace::snap::SnapError::Mismatch(msg)) => {
                assert!(msg.contains("regulator"), "unexpected message: {msg}");
            }
            other => panic!("expected a mismatch, got {other:?}"),
        }
    }

    /// Changing a core's tenant wipes its warm memos, so a memoized hit
    /// recorded under one tenant never replays under another.
    #[test]
    fn warm_memo_is_keyed_by_tenant() {
        let mut m = small_system(1);
        let addr = 0x4000_0000;
        // Record a warm memo for tenant 0.
        m.data_access_warm(0, Privilege::User, addr, false, 0, 0);
        m.data_access_warm(0, Privilege::User, addr, false, 0, 1);
        let hits_before = m.stats().per_core[0].l1d.total_hits();
        // Switch tenants; the line is still L1-resident, so the re-walk
        // (not the memo) must service the touch and re-memoize under the
        // new tenant id.
        m.set_tenant(0, 1);
        m.data_access_warm(0, Privilege::User, addr, false, 0, 2);
        assert!(m.stats().per_core[0].l1d.total_hits() > hits_before);
        assert_eq!(m.tenant_of(0), 1);
    }
}
