//! DDR3 memory-channel model.
//!
//! Models the Table 1 memory subsystem: three independent channels, lines
//! interleaved across channels, each channel serializing 64-byte bursts at
//! its peak bandwidth. Demand reads observe queueing delay behind earlier
//! transfers on the same channel; writebacks consume bandwidth without
//! delaying the requesting instruction. Per-channel busy cycles and total
//! bytes moved feed the Figure 7 bandwidth-utilization metric.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// 64-byte read bursts served.
    pub reads: u64,
    /// 64-byte write (writeback) bursts served.
    pub writes: u64,
    /// Total bytes moved in either direction.
    pub bytes: u64,
    /// Sum over channels of cycles spent transferring data.
    pub busy_cycles: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    next_free: u64,
}

/// The DRAM subsystem.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    service_cycles: u64,
    stats: DramStats,
}

impl Dram {
    /// Creates the subsystem described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has no channels or non-positive bandwidth.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0, "dram needs at least one channel");
        assert!(cfg.bytes_per_cycle_per_channel > 0.0, "bandwidth must be positive");
        let service_cycles = (64.0 / cfg.bytes_per_cycle_per_channel).ceil() as u64;
        Self { cfg, channels: vec![Channel::default(); cfg.channels], service_cycles, stats: DramStats::default() }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Requests a 64-byte line read at cycle `now`; returns the total
    /// latency (queueing + access + transfer) in cycles.
    // Queueing delay is bounded by the channel backlog of one window and
    // latency/service are small config constants, so the total fits u32.
    #[allow(clippy::cast_possible_truncation)]
    pub fn read(&mut self, line: u64, now: u64) -> u32 {
        let ch = (line % self.channels.len() as u64) as usize;
        let start = self.channels[ch].next_free.max(now);
        self.channels[ch].next_free = start + self.service_cycles;
        self.stats.reads += 1;
        self.stats.bytes += 64;
        self.stats.busy_cycles += self.service_cycles;
        ((start - now) + self.cfg.latency as u64 + self.service_cycles) as u32
    }

    /// Posts a 64-byte writeback at cycle `now`. Writebacks consume channel
    /// time (delaying later reads) but complete asynchronously, so no
    /// latency is returned.
    pub fn write(&mut self, line: u64, now: u64) {
        let ch = (line % self.channels.len() as u64) as usize;
        let start = self.channels[ch].next_free.max(now);
        self.channels[ch].next_free = start + self.service_cycles;
        self.stats.writes += 1;
        self.stats.bytes += 64;
        self.stats.busy_cycles += self.service_cycles;
    }

    /// Earliest cycle at which the DRAM subsystem would act on its own —
    /// `u64::MAX`, always, because the channel model is demand-driven:
    /// `next_free` is bookkeeping consumed lazily by the *next* read or
    /// write (queueing delay), not a timer that fires. A read requested at
    /// cycle `now` already received its full latency, so nothing returns
    /// later. If an autonomous mechanism (refresh, scheduled writeback
    /// drain) is ever added, its next firing time must be reported here
    /// for the chip's cycle skipping to remain byte-identical.
    pub fn next_event_cycle(&self) -> u64 {
        u64::MAX
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Zeroes the statistics (channel timing state is preserved). Used to
    /// discard the warmup window.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Serializes channel timing and statistics into `e` (the config and
    /// the derived `service_cycles` are rebuilt from configuration).
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.len(self.channels.len());
        for ch in &self.channels {
            e.u64(ch.next_free);
        }
        e.u64(self.stats.reads);
        e.u64(self.stats.writes);
        e.u64(self.stats.bytes);
        e.u64(self.stats.busy_cycles);
    }

    /// Restores state written by [`Dram::encode_snap`]; the subsystem must
    /// have the same channel count.
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        use cs_trace::snap::SnapError;
        let n = d.len()?;
        if n != self.channels.len() {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {n} DRAM channels, config has {}",
                self.channels.len()
            )));
        }
        for ch in &mut self.channels {
            ch.next_free = d.u64()?;
        }
        self.stats.reads = d.u64()?;
        self.stats.writes = d.u64()?;
        self.stats.bytes = d.u64()?;
        self.stats.busy_cycles = d.u64()?;
        Ok(())
    }

    /// Bandwidth utilization over `elapsed_cycles`: bytes moved divided by
    /// peak deliverable bytes (the Figure 7 metric).
    pub fn utilization(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let peak = self.cfg.peak_bytes_per_cycle() * elapsed_cycles as f64;
        self.stats.bytes as f64 / peak
    }
}

/// Per-tenant DRAM bandwidth throttle: a windowed token bucket.
///
/// Each tenant gets a byte budget per fixed window of simulated cycles
/// (windows are *absolute* — window `w` spans cycles
/// `[w*window_cycles, (w+1)*window_cycles)` — so admission depends only on
/// the access stream, never on when the regulator was constructed or
/// restored). An access that fits the current window's remaining budget is
/// admitted with zero delay; one that does not is deferred to the next
/// window with budget available, and the returned delay is charged to the
/// requesting instruction as extra memory latency. Budgets are per tenant
/// and windows are tracked per tenant, so one tenant's deferrals never
/// consume another tenant's tokens.
///
/// The regulator's cursor state is part of the simulation's dynamic state
/// and is covered by [`BandwidthRegulator::encode_snap`] /
/// [`BandwidthRegulator::restore_snap`] so checkpointed runs resume
/// byte-identically.
#[derive(Debug, Clone)]
pub struct BandwidthRegulator {
    window_cycles: u64,
    budgets: Vec<u64>,
    /// Per-tenant window cursor: the window index bytes are currently
    /// being charged into (monotone, advances on rollover and deferral).
    win: Vec<u64>,
    /// Bytes charged into `win[t]` so far.
    used: Vec<u64>,
}

impl BandwidthRegulator {
    /// Creates a regulator giving tenant `t` `budgets[t]` bytes per
    /// `window_cycles`-cycle window.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero, `budgets` is empty, or any
    /// budget is below one 64-byte burst (such a tenant could never make
    /// progress; the harness rejects these configs before construction).
    pub fn new(window_cycles: u64, budgets: Vec<u64>) -> Self {
        assert!(window_cycles > 0, "throttle window must be positive");
        assert!(!budgets.is_empty(), "throttle needs at least one tenant budget");
        assert!(
            budgets.iter().all(|&b| b >= 64),
            "every tenant budget must cover at least one 64-byte burst"
        );
        let n = budgets.len();
        Self { window_cycles, budgets, win: vec![0; n], used: vec![0; n] }
    }

    /// Number of tenants the regulator was configured for.
    pub fn tenants(&self) -> usize {
        self.budgets.len()
    }

    /// Charges a `bytes`-byte transfer by `tenant` at cycle `now` and
    /// returns the admission delay in cycles (zero when the current
    /// window's budget covers it). Tenants beyond the configured budget
    /// list are unthrottled (delay 0, nothing charged).
    pub fn admit(&mut self, tenant: usize, bytes: u64, now: u64) -> u64 {
        if tenant >= self.budgets.len() {
            return 0;
        }
        let current = now / self.window_cycles;
        if current > self.win[tenant] {
            self.win[tenant] = current;
            self.used[tenant] = 0;
        }
        if self.used[tenant] + bytes <= self.budgets[tenant] {
            self.used[tenant] += bytes;
            // Zero when the cursor window is the current one; positive
            // when earlier deferrals pushed the cursor into the future —
            // the charge then waits for its window to open.
            return (self.win[tenant] * self.window_cycles).saturating_sub(now);
        }
        // Defer to the next window. Budgets cover at least one 64-byte
        // burst and every charge is one burst, so a fresh window always
        // fits it; `min` keeps oversized charges from wedging the cursor.
        let w = self.win[tenant] + 1;
        self.win[tenant] = w;
        self.used[tenant] = bytes.min(self.budgets[tenant]);
        (w * self.window_cycles).saturating_sub(now)
    }

    /// Serializes the per-tenant window cursors into `e` (window length
    /// and budgets are configuration, rebuilt at restore time).
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.len(self.win.len());
        for t in 0..self.win.len() {
            e.u64(self.win[t]);
            e.u64(self.used[t]);
        }
    }

    /// Restores cursors written by [`BandwidthRegulator::encode_snap`];
    /// the tenant count must match the configuration.
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        use cs_trace::snap::SnapError;
        let n = d.len()?;
        if n != self.win.len() {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {n} throttled tenants, config has {}",
                self.win.len()
            )));
        }
        for t in 0..n {
            self.win[t] = d.u64()?;
            self.used[t] = d.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn idle_read_latency_is_base_plus_transfer() {
        let mut d = dram();
        let lat = d.read(0, 1000);
        let expect = DramConfig::default().latency as u64 + d.service_cycles;
        assert_eq!(lat as u64, expect);
    }

    #[test]
    fn back_to_back_reads_on_one_channel_queue() {
        let mut d = dram();
        let first = d.read(0, 0);
        let second = d.read(3, 0); // lines 0 and 3 share channel 0 of 3
        assert!(second > first);
    }

    #[test]
    fn reads_on_distinct_channels_do_not_queue() {
        let mut d = dram();
        let a = d.read(0, 0);
        let b = d.read(1, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn writes_consume_bandwidth_and_delay_reads() {
        let mut d = dram();
        d.write(0, 0);
        let lat = d.read(3, 0); // same channel as the write
        assert!(lat as u64 > DramConfig::default().latency as u64 + d.service_cycles);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn utilization_tracks_bytes() {
        let mut d = dram();
        for i in 0..100u64 {
            d.read(i, i * 10);
        }
        let util = d.utilization(10_000);
        let expect = (100.0 * 64.0) / (DramConfig::default().peak_bytes_per_cycle() * 10_000.0);
        assert!((util - expect).abs() < 1e-12);
        assert_eq!(d.utilization(0), 0.0);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dram();
        d.read(0, 0);
        d.write(1, 0);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes, 128);
        assert!(s.busy_cycles > 0);
    }

    #[test]
    #[should_panic(expected = "channel")]
    fn rejects_zero_channels() {
        let _ = Dram::new(DramConfig { channels: 0, ..DramConfig::default() });
    }

    #[test]
    fn regulator_admits_within_budget_without_delay() {
        let mut r = BandwidthRegulator::new(1000, vec![256]);
        for i in 0..4 {
            assert_eq!(r.admit(0, 64, i * 10), 0, "burst {i} fits the 256-byte budget");
        }
    }

    #[test]
    fn regulator_defers_over_budget_bursts_to_the_next_window() {
        let mut r = BandwidthRegulator::new(1000, vec![128]);
        assert_eq!(r.admit(0, 64, 100), 0);
        assert_eq!(r.admit(0, 64, 200), 0);
        // Third burst exceeds the window budget: deferred to cycle 1000.
        assert_eq!(r.admit(0, 64, 300), 700);
        // That deferral consumed window 1's budget head room; the window
        // still has 64 bytes left, so a burst arriving inside window 0
        // charges into window 1 without further delay... unless full.
        assert_eq!(r.admit(0, 64, 400), 600);
        // Window 1 now holds 128/128 bytes: the next burst rolls to window 2.
        assert_eq!(r.admit(0, 64, 500), 1500);
    }

    #[test]
    fn regulator_tenants_are_independent() {
        let mut r = BandwidthRegulator::new(1000, vec![64, 6400]);
        assert_eq!(r.admit(0, 64, 0), 0);
        assert!(r.admit(0, 64, 1) > 0, "tenant 0 exhausted its budget");
        assert_eq!(r.admit(1, 64, 2), 0, "tenant 1 budget is untouched");
        assert_eq!(r.admit(7, 64, 3), 0, "unconfigured tenants are unthrottled");
    }

    #[test]
    fn regulator_windows_are_absolute() {
        let mut a = BandwidthRegulator::new(100, vec![64]);
        let mut b = BandwidthRegulator::new(100, vec![64]);
        // b sees an earlier access; both must agree on the window that
        // cycle 250 falls into and the deferral target.
        let _ = b.admit(0, 64, 50);
        let _ = b.admit(0, 64, 250);
        let d_a = a.admit(0, 64, 250);
        assert_eq!(d_a, 0, "first access in window 2 is free");
        assert_eq!(a.admit(0, 64, 251), 49, "deferred to window 3 at cycle 300");
    }

    #[test]
    fn regulator_snapshot_roundtrips() {
        let mut r = BandwidthRegulator::new(500, vec![128, 256]);
        let _ = r.admit(0, 64, 10);
        let _ = r.admit(0, 64, 20);
        let _ = r.admit(0, 64, 30); // deferred: cursor state is non-trivial
        let _ = r.admit(1, 64, 40);
        let mut e = cs_trace::snap::Enc::new();
        r.encode_snap(&mut e);
        let mut fresh = BandwidthRegulator::new(500, vec![128, 256]);
        let mut d = cs_trace::snap::Dec::new(&e.buf);
        fresh.restore_snap(&mut d).expect("restore");
        d.finish().expect("no trailing bytes");
        // Behavior, not just state, must match.
        assert_eq!(r.admit(0, 64, 60), fresh.admit(0, 64, 60));
        assert_eq!(r.admit(1, 64, 600), fresh.admit(1, 64, 600));
    }

    #[test]
    #[should_panic(expected = "64-byte burst")]
    fn regulator_rejects_sub_burst_budgets() {
        let _ = BandwidthRegulator::new(100, vec![63]);
    }
}
