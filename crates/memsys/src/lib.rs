//! Memory-system substrate for CloudSuite-RS.
//!
//! Models the entire memory hierarchy of the paper's testbed (Table 1): two
//! sockets of private L1-I/L1-D and unified L2 caches per core, one shared
//! inclusive LLC per socket, snoop-based cross-socket coherence with
//! read-write sharing detection (Figure 6), the three hardware prefetchers
//! named in the paper (adjacent-line, L2 HW/stride prefetcher, DCU streamer
//! — Figure 5), instruction/data/second-level TLBs (whose miss cycles enter
//! the §3.1 memory-cycle formula), and a DDR3 channel model with bandwidth
//! accounting (Figure 7).
//!
//! The model is *latency-on-access*: a demand access walks the hierarchy
//! once, updates all state, and returns its full load-to-use latency plus
//! the classification flags the methodology needs (off-core?, hit level,
//! read-write shared?, TLB miss cycles). Timing interleaving across cores
//! is provided by the cycle-level core model in `cs-uarch`, which calls
//! into this crate in lock-step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::perf)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod fault;
pub mod prefetch;
pub mod stats;
pub mod system;
pub mod tlb;

pub use config::{CacheConfig, DramConfig, MemSysConfig, PrefetchConfig, QosConfig, TlbConfig};
pub use dram::BandwidthRegulator;
pub use fault::{FaultCounters, FaultPlan};
pub use stats::{AccessClass, MemStats};
pub use system::{DataOutcome, FetchOutcome, MemorySystem, ServiceLevel};
