//! Set-associative cache with LRU replacement and per-line coherence
//! metadata.
//!
//! One [`Cache`] type serves every level of the hierarchy; the level
//! semantics (private vs. shared, inclusive back-invalidation, sharing
//! detection) live in [`crate::system`], which composes caches and
//! interprets the per-line [`LineMeta`] fields.

/// Per-line metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// Line holds modified data not yet written back.
    pub dirty: bool,
    /// Line may be written locally without an upgrade request (E/M in MESI
    /// terms; false means S).
    pub writable: bool,
    /// Line was installed by a prefetcher and not yet demanded (cleared on
    /// the first demand hit; used for useful-prefetch accounting).
    pub prefetched: bool,
    /// Bitmask of cores (socket-local numbering) whose private caches may
    /// hold the line. Only meaningful on shared (LLC) caches.
    pub sharers: u16,
    /// Core that most recently wrote the line, if the write has not yet
    /// been observed by a different core. Only meaningful on LLC lines:
    /// this is the Figure 6 read-write sharing detector.
    pub fresh_writer: Option<u8>,
    /// Tenant (co-located workload) on whose behalf the line was filled.
    /// `0` in every single-tenant run; used by the interference matrix for
    /// per-tenant LLC occupancy accounting and way-partition enforcement.
    pub tenant: u8,
}

impl LineMeta {
    /// Metadata for a clean line filled on behalf of a read.
    pub fn clean() -> Self {
        Self {
            dirty: false,
            writable: false,
            prefetched: false,
            sharers: 0,
            fresh_writer: None,
            tenant: 0,
        }
    }
}

impl Default for LineMeta {
    fn default() -> Self {
        Self::clean()
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    stamp: u64,
    meta: LineMeta,
}

const INVALID: Way = Way {
    tag: 0,
    valid: false,
    stamp: 0,
    meta: LineMeta {
        dirty: false,
        writable: false,
        prefetched: false,
        sharers: 0,
        fresh_writer: None,
        tenant: 0,
    },
};

/// Precomputed set-index strategy: `line mod n_sets` without a hardware
/// divide on the hot path.
///
/// Set counts are fixed at construction, so the divisor is a constant
/// the compiler never sees — the Table 1 LLC has 12288 sets, which is
/// *not* a power of two, and `line % 12288` showed up as a `div` in
/// every lookup, fill, peek and invalidate. Powers of two reduce to a
/// mask; other divisors below 2^32 use the multiply-shift trick
/// (Lemire's fastmod): with `magic = ceil(2^128 / d)`, the remainder of
/// any 64-bit `n` is `mulhi_128(magic * n, d)`. Divisors of 2^32 and up
/// (never seen in practice) keep the plain `%`.
#[derive(Debug, Clone, Copy)]
enum SetIndex {
    /// `n_sets` is a power of two: index = line & mask.
    Mask(u64),
    /// Non-power-of-two `d < 2^32`: index = high 64 bits of
    /// `(magic * line mod 2^128) * d`.
    FastMod { d: u64, magic: u128 },
    /// Fallback for huge divisors: plain modulo.
    Mod(u64),
}

/// High 64 bits of the 192-bit product `x * d`, computed in 128-bit
/// pieces (`x` is already reduced mod 2^128 by wrapping arithmetic).
#[inline]
fn mulhi_128(x: u128, d: u64) -> u64 {
    let lo = (x as u64) as u128;
    let hi = (x >> 64) as u64 as u128;
    let d = d as u128;
    ((hi * d + ((lo * d) >> 64)) >> 64) as u64
}

impl SetIndex {
    fn new(n_sets: u64) -> Self {
        if n_sets.is_power_of_two() {
            SetIndex::Mask(n_sets - 1)
        } else if n_sets < 1 << 32 {
            // ceil(2^128 / d) for non-power-of-two d; correct for all
            // 64-bit dividends because the fastmod error term stays
            // below 2^128 when d < 2^32.
            SetIndex::FastMod { d: n_sets, magic: u128::MAX / n_sets as u128 + 1 }
        } else {
            SetIndex::Mod(n_sets)
        }
    }

    #[inline]
    fn index(self, line: u64) -> u64 {
        match self {
            SetIndex::Mask(mask) => line & mask,
            SetIndex::FastMod { d, magic } => mulhi_128(magic.wrapping_mul(line as u128), d),
            SetIndex::Mod(d) => line % d,
        }
    }
}

/// A set-associative, write-back, write-allocate cache over 64-byte lines
/// with true-LRU replacement.
///
/// Addresses passed to this type are *line addresses* (byte address divided
/// by 64); the caller performs the shift once.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>,
    assoc: usize,
    set_index: SetIndex,
    tick: u64,
}

/// Result of a [`Cache::fill`]: the line that had to be evicted, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: u64,
    /// Victim metadata at eviction time.
    pub meta: LineMeta,
}

impl Cache {
    /// Creates a cache with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0, "set count must be positive");
        assert!(assoc > 0, "associativity must be positive");
        Self { ways: vec![INVALID; sets * assoc], assoc, set_index: SetIndex::new(sets as u64), tick: 0 }
    }

    /// Creates a cache from a [`crate::config::CacheConfig`]. Set counts
    /// need not be powers of two (the Table 1 LLC has 12288 sets); lines
    /// are indexed by modulo.
    pub fn from_config(cfg: &crate::config::CacheConfig) -> Self {
        Self::new(cfg.sets(), cfg.assoc)
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.ways.len()
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = self.set_index.index(line) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Looks up `line`; on a hit, touches LRU state and returns the
    /// metadata (mutable so the caller can update coherence bits).
    #[inline]
    pub fn lookup(&mut self, line: u64) -> Option<&mut LineMeta> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == line {
                way.stamp = tick;
                return Some(&mut way.meta);
            }
        }
        None
    }

    /// Way index and metadata of `line`, if present, without touching LRU
    /// state.
    pub fn probe(&self, line: u64) -> Option<(usize, &LineMeta)> {
        let range = self.set_range(line);
        let base = range.start;
        self.ways[range]
            .iter()
            .enumerate()
            .find(|(_, w)| w.valid && w.tag == line)
            .map(|(i, w)| (base + i, &w.meta))
    }

    /// Metadata of `line` if — and only if — it currently sits at `way`,
    /// without touching LRU state. O(1): validates a memoized way index
    /// instead of scanning the set.
    #[inline]
    pub fn way_holds(&self, way: usize, line: u64) -> Option<&LineMeta> {
        let w = &self.ways[way];
        if w.valid && w.tag == line {
            Some(&w.meta)
        } else {
            None
        }
    }

    /// Re-stamps `way` as most-recently used, exactly as a [`Cache::lookup`]
    /// hit on its resident line would (tick advance included, so snapshots
    /// of a replayed hit are byte-identical to snapshots of a real one).
    #[inline]
    pub fn touch_way(&mut self, way: usize) {
        self.tick += 1;
        self.ways[way].stamp = self.tick;
    }

    /// Looks up `line` without touching LRU state.
    pub fn peek(&self, line: u64) -> Option<&LineMeta> {
        let range = self.set_range(line);
        self.ways[range].iter().find(|w| w.valid && w.tag == line).map(|w| &w.meta)
    }

    /// Looks up `line` mutably without touching LRU state.
    pub fn peek_mut(&mut self, line: u64) -> Option<&mut LineMeta> {
        let range = self.set_range(line);
        self.ways[range].iter_mut().find(|w| w.valid && w.tag == line).map(|w| &mut w.meta)
    }

    /// Installs `line` with `meta`, evicting the LRU way if the set is
    /// full. If the line is already present its metadata is replaced (no
    /// eviction). Returns the victim, if one was evicted.
    #[inline]
    pub fn fill(&mut self, line: u64, meta: LineMeta) -> Option<Evicted> {
        self.fill_masked(line, meta, u64::MAX)
    }

    /// [`Cache::fill`] restricted to the ways whose bits are set in `mask`
    /// (bit `i` = way `i` within the set): free-way selection and LRU
    /// victim selection only consider allowed ways, which is how an LLC
    /// way partition isolates tenants — a tenant confined to `mask` can
    /// never evict a line living outside it. A line already present is
    /// refreshed in place *wherever* it sits: hits are never partitioned,
    /// only allocations, matching how CAT-style hardware partitions work.
    ///
    /// `fill` is exactly `fill_masked` with a full mask, so single-tenant
    /// runs are byte-identical to the unmasked code they replaced.
    ///
    /// # Panics
    ///
    /// Panics if `mask` selects none of the set's ways — a mask that can
    /// never allocate is a configuration error the caller must reject.
    #[inline]
    pub fn fill_masked(&mut self, line: u64, meta: LineMeta, mask: u64) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let ways = &mut self.ways[range];

        // Already present: refresh (in place, mask not consulted).
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            w.meta = meta;
            w.stamp = tick;
            return None;
        }
        let allowed = |i: usize| i < 64 && mask & (1u64 << i) != 0;
        // Free way among the allowed ways.
        if let Some((_, w)) = ways.iter_mut().enumerate().find(|(i, w)| allowed(*i) && !w.valid) {
            *w = Way { tag: line, valid: true, stamp: tick, meta };
            return None;
        }
        // Evict LRU among the allowed ways.
        let victim = ways
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| allowed(*i))
            .min_by_key(|(_, w)| w.stamp)
            .map(|(_, w)| w)
            .expect("way mask selects no ways");
        let evicted = Evicted { line: victim.tag, meta: victim.meta };
        *victim = Way { tag: line, valid: true, stamp: tick, meta };
        Some(evicted)
    }

    /// Removes `line`, returning its metadata if it was present.
    pub fn invalidate(&mut self, line: u64) -> Option<LineMeta> {
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == line {
                way.valid = false;
                return Some(way.meta);
            }
        }
        None
    }


    /// Number of currently valid lines (O(capacity); for tests and
    /// diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Number of currently valid lines tagged with `tenant` (O(capacity);
    /// the interference matrix reads this at report time, never on the
    /// simulation hot path).
    pub fn tenant_lines(&self, tenant: u8) -> usize {
        self.ways.iter().filter(|w| w.valid && w.meta.tenant == tenant).count()
    }

    /// Serializes the cache contents (LRU clock plus every valid way) into
    /// `e`. Geometry (`sets`/`assoc`) is *not* serialized — it is derived
    /// from configuration at restore time, so a snapshot can only be
    /// restored into an identically-shaped cache.
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.u64(self.tick);
        e.len(self.valid_lines());
        for (i, w) in self.ways.iter().enumerate() {
            if !w.valid {
                continue;
            }
            // Plain u64, not `len`: a way *index* in a large cache can
            // legitimately exceed the snapshot's byte length, which the
            // `len` corruption guard would reject.
            e.u64(i as u64);
            e.u64(w.tag);
            e.u64(w.stamp);
            e.bool(w.meta.dirty);
            e.bool(w.meta.writable);
            e.bool(w.meta.prefetched);
            e.u16(w.meta.sharers);
            e.opt_u8(w.meta.fresh_writer);
            e.u8(w.meta.tenant);
        }
    }

    /// Restores contents written by [`Cache::encode_snap`] into this
    /// cache, which must have the same geometry. All ways are invalidated
    /// first, so a partially-filled snapshot leaves the rest empty.
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        use cs_trace::snap::SnapError;
        self.tick = d.u64()?;
        for w in &mut self.ways {
            *w = INVALID;
        }
        let n = d.len()?;
        for _ in 0..n {
            let i = usize::try_from(d.u64()?).map_err(|_| SnapError::Truncated)?;
            if i >= self.ways.len() {
                return Err(SnapError::Mismatch(format!(
                    "way index {i} out of range for a {}-line cache",
                    self.ways.len()
                )));
            }
            let tag = d.u64()?;
            let stamp = d.u64()?;
            let meta = LineMeta {
                dirty: d.bool()?,
                writable: d.bool()?,
                prefetched: d.bool()?,
                sharers: d.u16()?,
                fresh_writer: d.opt_u8()?,
                tenant: d.u8()?,
            };
            self.ways[i] = Way { tag, valid: true, stamp, meta };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(c.lookup(0x100).is_none());
        assert!(c.fill(0x100, LineMeta::clean()).is_none());
        assert!(c.lookup(0x100).is_some());
        assert!(c.peek(0x100).is_some());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(1, 2);
        c.fill(1, LineMeta::clean());
        c.fill(2, LineMeta::clean());
        // Touch 1 so 2 becomes LRU.
        assert!(c.lookup(1).is_some());
        let ev = c.fill(3, LineMeta::clean()).expect("set is full");
        assert_eq!(ev.line, 2);
        assert!(c.peek(1).is_some());
        assert!(c.peek(2).is_none());
        assert!(c.peek(3).is_some());
    }

    #[test]
    fn refill_replaces_metadata_without_eviction() {
        let mut c = Cache::new(1, 1);
        c.fill(7, LineMeta::clean());
        let mut dirty = LineMeta::clean();
        dirty.dirty = true;
        assert!(c.fill(7, dirty).is_none());
        assert!(c.peek(7).expect("present").dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(2, 2);
        c.fill(5, LineMeta::clean());
        assert!(c.invalidate(5).is_some());
        assert!(c.peek(5).is_none());
        assert!(c.invalidate(5).is_none());
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = Cache::new(4, 2);
        for line in 0..100u64 {
            c.fill(line, LineMeta::clean());
        }
        assert!(c.valid_lines() <= c.capacity_lines());
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = Cache::new(2, 1);
        c.fill(0, LineMeta::clean()); // set 0
        c.fill(1, LineMeta::clean()); // set 1
        assert!(c.peek(0).is_some());
        assert!(c.peek(1).is_some());
        // Filling set 0 again does not disturb set 1.
        c.fill(2, LineMeta::clean());
        assert!(c.peek(0).is_none());
        assert!(c.peek(1).is_some());
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = Cache::new(1, 2);
        c.fill(1, LineMeta::clean());
        c.fill(2, LineMeta::clean());
        // Peek at 1 (no LRU update): 1 is still LRU and must be evicted.
        assert!(c.peek(1).is_some());
        let ev = c.fill(3, LineMeta::clean()).expect("full");
        assert_eq!(ev.line, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_sets() {
        let _ = Cache::new(0, 2);
    }

    #[test]
    fn non_power_of_two_sets_index_by_modulo() {
        let mut c = Cache::new(3, 1);
        c.fill(0, LineMeta::clean());
        c.fill(3, LineMeta::clean()); // same set as 0 under mod 3
        assert!(c.peek(0).is_none());
        assert!(c.peek(3).is_some());
        assert!(c.fill(1, LineMeta::clean()).is_none()); // different set
    }

    #[test]
    fn set_index_matches_plain_modulo() {
        // Divisors covering every strategy: 1 and powers of two (mask),
        // small odds and the Table 1 LLC's 12288 and large primes
        // (fastmod), and a >= 2^32 divisor (plain-modulo fallback).
        let divisors: &[u64] = &[
            1,
            2,
            3,
            5,
            7,
            12,
            64,
            12288,
            12289,
            65_521,
            1 << 20,
            (1 << 31) - 1,
            (1 << 32) - 5,
            (1 << 33) + 7,
        ];
        // Deterministic splitmix64 stream plus adversarial edge values.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut lines = vec![0u64, 1, 2, 63, 64, u64::MAX, u64::MAX - 1, 1 << 32, (1 << 32) - 1];
        for _ in 0..10_000 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            lines.push(z ^ (z >> 31));
        }
        for &d in divisors {
            let idx = SetIndex::new(d);
            for &line in &lines {
                assert_eq!(idx.index(line), line % d, "divisor {d}, line {line:#x}");
            }
        }
    }

    #[test]
    fn from_config_rounds_sets_up() {
        let c = Cache::from_config(&crate::config::CacheConfig::l1());
        assert_eq!(c.capacity_lines(), 64 * 8);
    }

    #[test]
    fn masked_fill_allocates_only_inside_the_mask() {
        let mut c = Cache::new(1, 4);
        let mut t0 = LineMeta::clean();
        t0.tenant = 0;
        let mut t1 = LineMeta::clean();
        t1.tenant = 1;
        // Tenant 0 owns ways {0,1}; tenant 1 owns ways {2,3}.
        for line in [10, 11, 12] {
            c.fill_masked(line, t0, 0b0011);
        }
        // Three fills into a 2-way partition: one tenant-0 victim, and
        // never more than two tenant-0 lines resident.
        assert_eq!(c.tenant_lines(0), 2);
        for line in [20, 21, 22, 23] {
            let ev = c.fill_masked(line, t1, 0b1100);
            // Tenant 1 evictions only ever hit tenant-1 lines.
            if let Some(ev) = ev {
                assert_eq!(ev.meta.tenant, 1, "cross-tenant eviction of line {}", ev.line);
            }
        }
        assert_eq!(c.tenant_lines(0), 2, "tenant 0 lines must survive tenant 1 pressure");
        assert_eq!(c.tenant_lines(1), 2);
    }

    #[test]
    fn masked_fill_refreshes_resident_lines_outside_the_mask() {
        let mut c = Cache::new(1, 2);
        c.fill_masked(5, LineMeta::clean(), 0b01); // way 0
        // The same line re-filled under a disjoint mask refreshes in
        // place — hits are not partitioned, only allocations.
        let mut dirty = LineMeta::clean();
        dirty.dirty = true;
        assert!(c.fill_masked(5, dirty, 0b10).is_none());
        assert_eq!(c.valid_lines(), 1);
        assert!(c.peek(5).expect("present").dirty);
    }

    #[test]
    fn full_mask_fill_is_plain_fill() {
        let mut a = Cache::new(4, 2);
        let mut b = Cache::new(4, 2);
        let mut x = 0x9E37_79B9u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let line = (x >> 33) % 64;
            a.fill(line, LineMeta::clean());
            b.fill_masked(line, LineMeta::clean(), u64::MAX);
        }
        let mut ea = cs_trace::snap::Enc::new();
        let mut eb = cs_trace::snap::Enc::new();
        a.encode_snap(&mut ea);
        b.encode_snap(&mut eb);
        assert_eq!(ea.buf, eb.buf, "full mask must be byte-identical");
    }

    #[test]
    #[should_panic(expected = "selects no ways")]
    fn empty_mask_fill_is_rejected() {
        let mut c = Cache::new(1, 2);
        c.fill_masked(1, LineMeta::clean(), 0);
    }
}
