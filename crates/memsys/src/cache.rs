//! Set-associative cache with LRU replacement and per-line coherence
//! metadata.
//!
//! One [`Cache`] type serves every level of the hierarchy; the level
//! semantics (private vs. shared, inclusive back-invalidation, sharing
//! detection) live in [`crate::system`], which composes caches and
//! interprets the per-line [`LineMeta`] fields.

/// Per-line metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// Line holds modified data not yet written back.
    pub dirty: bool,
    /// Line may be written locally without an upgrade request (E/M in MESI
    /// terms; false means S).
    pub writable: bool,
    /// Line was installed by a prefetcher and not yet demanded (cleared on
    /// the first demand hit; used for useful-prefetch accounting).
    pub prefetched: bool,
    /// Bitmask of cores (socket-local numbering) whose private caches may
    /// hold the line. Only meaningful on shared (LLC) caches.
    pub sharers: u16,
    /// Core that most recently wrote the line, if the write has not yet
    /// been observed by a different core. Only meaningful on LLC lines:
    /// this is the Figure 6 read-write sharing detector.
    pub fresh_writer: Option<u8>,
}

impl LineMeta {
    /// Metadata for a clean line filled on behalf of a read.
    pub fn clean() -> Self {
        Self { dirty: false, writable: false, prefetched: false, sharers: 0, fresh_writer: None }
    }
}

impl Default for LineMeta {
    fn default() -> Self {
        Self::clean()
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    stamp: u64,
    meta: LineMeta,
}

const INVALID: Way =
    Way { tag: 0, valid: false, stamp: 0, meta: LineMeta { dirty: false, writable: false, prefetched: false, sharers: 0, fresh_writer: None } };

/// A set-associative, write-back, write-allocate cache over 64-byte lines
/// with true-LRU replacement.
///
/// Addresses passed to this type are *line addresses* (byte address divided
/// by 64); the caller performs the shift once.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>,
    assoc: usize,
    n_sets: u64,
    tick: u64,
}

/// Result of a [`Cache::fill`]: the line that had to be evicted, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: u64,
    /// Victim metadata at eviction time.
    pub meta: LineMeta,
}

impl Cache {
    /// Creates a cache with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0, "set count must be positive");
        assert!(assoc > 0, "associativity must be positive");
        Self { ways: vec![INVALID; sets * assoc], assoc, n_sets: sets as u64, tick: 0 }
    }

    /// Creates a cache from a [`crate::config::CacheConfig`]. Set counts
    /// need not be powers of two (the Table 1 LLC has 12288 sets); lines
    /// are indexed by modulo.
    pub fn from_config(cfg: &crate::config::CacheConfig) -> Self {
        Self::new(cfg.sets(), cfg.assoc)
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.ways.len()
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.n_sets) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Looks up `line`; on a hit, touches LRU state and returns the
    /// metadata (mutable so the caller can update coherence bits).
    pub fn lookup(&mut self, line: u64) -> Option<&mut LineMeta> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == line {
                way.stamp = tick;
                return Some(&mut way.meta);
            }
        }
        None
    }

    /// Looks up `line` without touching LRU state.
    pub fn peek(&self, line: u64) -> Option<&LineMeta> {
        let range = self.set_range(line);
        self.ways[range].iter().find(|w| w.valid && w.tag == line).map(|w| &w.meta)
    }

    /// Looks up `line` mutably without touching LRU state.
    pub fn peek_mut(&mut self, line: u64) -> Option<&mut LineMeta> {
        let range = self.set_range(line);
        self.ways[range].iter_mut().find(|w| w.valid && w.tag == line).map(|w| &mut w.meta)
    }

    /// Installs `line` with `meta`, evicting the LRU way if the set is
    /// full. If the line is already present its metadata is replaced (no
    /// eviction). Returns the victim, if one was evicted.
    pub fn fill(&mut self, line: u64, meta: LineMeta) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let ways = &mut self.ways[range];

        // Already present: refresh.
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            w.meta = meta;
            w.stamp = tick;
            return None;
        }
        // Free way.
        if let Some(w) = ways.iter_mut().find(|w| !w.valid) {
            *w = Way { tag: line, valid: true, stamp: tick, meta };
            return None;
        }
        // Evict LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| w.stamp)
            .expect("associativity is positive");
        let evicted = Evicted { line: victim.tag, meta: victim.meta };
        *victim = Way { tag: line, valid: true, stamp: tick, meta };
        Some(evicted)
    }

    /// Removes `line`, returning its metadata if it was present.
    pub fn invalidate(&mut self, line: u64) -> Option<LineMeta> {
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == line {
                way.valid = false;
                return Some(way.meta);
            }
        }
        None
    }

    /// Number of currently valid lines (O(capacity); for tests and
    /// diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(c.lookup(0x100).is_none());
        assert!(c.fill(0x100, LineMeta::clean()).is_none());
        assert!(c.lookup(0x100).is_some());
        assert!(c.peek(0x100).is_some());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(1, 2);
        c.fill(1, LineMeta::clean());
        c.fill(2, LineMeta::clean());
        // Touch 1 so 2 becomes LRU.
        assert!(c.lookup(1).is_some());
        let ev = c.fill(3, LineMeta::clean()).expect("set is full");
        assert_eq!(ev.line, 2);
        assert!(c.peek(1).is_some());
        assert!(c.peek(2).is_none());
        assert!(c.peek(3).is_some());
    }

    #[test]
    fn refill_replaces_metadata_without_eviction() {
        let mut c = Cache::new(1, 1);
        c.fill(7, LineMeta::clean());
        let mut dirty = LineMeta::clean();
        dirty.dirty = true;
        assert!(c.fill(7, dirty).is_none());
        assert!(c.peek(7).expect("present").dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(2, 2);
        c.fill(5, LineMeta::clean());
        assert!(c.invalidate(5).is_some());
        assert!(c.peek(5).is_none());
        assert!(c.invalidate(5).is_none());
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = Cache::new(4, 2);
        for line in 0..100u64 {
            c.fill(line, LineMeta::clean());
        }
        assert!(c.valid_lines() <= c.capacity_lines());
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = Cache::new(2, 1);
        c.fill(0, LineMeta::clean()); // set 0
        c.fill(1, LineMeta::clean()); // set 1
        assert!(c.peek(0).is_some());
        assert!(c.peek(1).is_some());
        // Filling set 0 again does not disturb set 1.
        c.fill(2, LineMeta::clean());
        assert!(c.peek(0).is_none());
        assert!(c.peek(1).is_some());
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = Cache::new(1, 2);
        c.fill(1, LineMeta::clean());
        c.fill(2, LineMeta::clean());
        // Peek at 1 (no LRU update): 1 is still LRU and must be evicted.
        assert!(c.peek(1).is_some());
        let ev = c.fill(3, LineMeta::clean()).expect("full");
        assert_eq!(ev.line, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_sets() {
        let _ = Cache::new(0, 2);
    }

    #[test]
    fn non_power_of_two_sets_index_by_modulo() {
        let mut c = Cache::new(3, 1);
        c.fill(0, LineMeta::clean());
        c.fill(3, LineMeta::clean()); // same set as 0 under mod 3
        assert!(c.peek(0).is_none());
        assert!(c.peek(3).is_some());
        assert!(c.fill(1, LineMeta::clean()).is_none()); // different set
    }

    #[test]
    fn from_config_rounds_sets_up() {
        let c = Cache::from_config(&crate::config::CacheConfig::l1());
        assert_eq!(c.capacity_lines(), 64 * 8);
    }
}
