//! The SMT study of Figure 3, as a standalone example: how much of the
//! 4-wide core's wasted issue bandwidth do two independent hardware
//! threads recover for scale-out workloads?
//!
//! ```sh
//! cargo run --release --example smt_study
//! ```

use cloudsuite::harness::{run, RunConfig};
use cloudsuite::Benchmark;
use cs_perf::Table;

fn main() {
    let cfg = RunConfig::quick();
    let mut table = Table::new(
        "SMT study (paper Figure 3)",
        &["workload", "IPC base", "IPC SMT", "uplift %", "MLP base", "MLP SMT"],
    );
    for bench in [
        Benchmark::data_serving(),
        Benchmark::web_search(),
        Benchmark::media_streaming(),
    ] {
        let base = run(&bench, &cfg).expect("the quick config is valid");
        let smt =
            run(&bench, &RunConfig { smt: true, ..cfg.clone() }).expect("the SMT config is valid");
        table.row([
            base.name.clone().into(),
            base.app_ipc().into(),
            smt.app_ipc().into(),
            (100.0 * (smt.app_ipc() / base.app_ipc() - 1.0)).into(),
            base.mlp().into(),
            smt.mlp().into(),
        ]);
    }
    println!("{table}");
    println!("The paper reports 39-69% IPC improvements and a near-doubling of");
    println!("MLP for scale-out workloads under SMT (§4.2): independent requests");
    println!("supply the independent instructions the single thread lacks.");
}
