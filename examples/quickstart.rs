//! Quickstart: characterize one scale-out workload on the modeled machine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's machine (Table 1), runs the Data Serving workload
//! (an in-memory key-value store under a Zipfian YCSB-style client) on
//! four cores, and prints the headline metrics of the characterization.

use cloudsuite::harness::{run, RunConfig};
use cloudsuite::{Benchmark, MachineConfig};

fn main() {
    // The machine under test: two six-core Xeon X5670-like sockets.
    let machine = MachineConfig::default();
    println!("Machine: {}", machine.name);
    for (k, v) in machine.table1_rows() {
        println!("  {k:<22} {v}");
    }

    // One benchmark, default methodology: 4 worker cores, warmup to
    // steady state, then a measured window (§3.1 of the paper).
    let bench = Benchmark::data_serving();
    let cfg = RunConfig::quick();
    println!("\nRunning {} ({} warmup + {} measured instructions)...",
        bench.name(), cfg.warmup_instr, cfg.measure_instr);
    let r = run(&bench, &cfg).expect("the quick config is valid");

    let b = r.breakdown();
    let (l1i_app, l1i_os) = r.l1i_mpki();
    let (share_app, share_os) = r.rw_shared_pct();
    let (bw_app, bw_os) = r.bandwidth_pct();
    println!("\n{} on {} cores over {} cycles:", r.name, r.n_workers, r.cycles);
    println!("  application IPC        {:.2} (of a 4-wide core)", r.app_ipc());
    println!("  memory-level par.      {:.2}", r.mlp());
    println!("  cycles stalled         {:.0}%", 100.0 * (b.stalled_app + b.stalled_os));
    println!("  memory cycles          {:.0}%", 100.0 * b.memory);
    println!("  L1-I misses / k-instr  {:.1} (+{:.1} OS)", l1i_app, l1i_os);
    println!("  read-write sharing     {:.2}% of LLC data refs", share_app + share_os);
    println!("  off-chip bandwidth     {:.1}% of per-core available", bw_app + bw_os);
    println!("\nThe scale-out signature: a stall-dominated, memory-bound core");
    println!("with an instruction working set far beyond the L1-I, yet almost");
    println!("no sharing and a mostly idle memory bus (paper §4).");
}
