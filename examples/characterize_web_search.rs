//! Characterize the Web Search workload end to end, the way §4 of the
//! paper walks through its findings: frontend, core, data access, and
//! bandwidth — for one workload.
//!
//! ```sh
//! cargo run --release --example characterize_web_search
//! ```

use cloudsuite::harness::{run, RunConfig};
use cloudsuite::Benchmark;
use cs_perf::{Report, Table};

fn main() {
    let bench = Benchmark::web_search();
    let cfg = RunConfig::quick();

    let base = run(&bench, &cfg).expect("the quick config is valid");
    let smt =
        run(&bench, &RunConfig { smt: true, ..cfg.clone() }).expect("the SMT config is valid");

    let mut report = Report::new("Web Search characterization (Nutch/Lucene ISN model)");
    report.note("An index-serving node intersecting posting lists over a memory-resident shard.");

    let mut frontend = Table::new("Frontend (paper §4.1)", &["metric", "value"]).with_precision(1);
    let (l1i_app, l1i_os) = base.l1i_mpki();
    let (l2i_app, l2i_os) = base.l2i_mpki();
    frontend.row(["L1-I MPKI (app)".into(), l1i_app.into()]);
    frontend.row(["L1-I MPKI (OS)".into(), l1i_os.into()]);
    frontend.row(["L2 instruction MPKI (app)".into(), l2i_app.into()]);
    frontend.row(["L2 instruction MPKI (OS)".into(), l2i_os.into()]);
    report.push(frontend);

    let mut core = Table::new("Core (paper §4.2)", &["metric", "value"]);
    core.row(["application IPC (baseline)".into(), base.app_ipc().into()]);
    core.row(["application IPC (SMT)".into(), smt.app_ipc().into()]);
    core.row(["MLP (baseline)".into(), base.mlp().into()]);
    core.row(["MLP (SMT)".into(), smt.mlp().into()]);
    core.row([
        "SMT uplift %".into(),
        (100.0 * (smt.app_ipc() / base.app_ipc() - 1.0)).into(),
    ]);
    report.push(core);

    let mut memory = Table::new("Data access & bandwidth (paper §4.3–4.4)", &["metric", "value"]);
    let b = base.breakdown();
    memory.row(["stalled fraction".into(), (b.stalled_app + b.stalled_os).into()]);
    memory.row(["memory-cycles fraction".into(), b.memory.into()]);
    memory.row(["L2 hit ratio".into(), base.l2_hit_ratio().into()]);
    let (sa, so) = base.rw_shared_pct();
    memory.row(["rw-shared LLC refs % (app)".into(), sa.into()]);
    memory.row(["rw-shared LLC refs % (OS)".into(), so.into()]);
    let (ba, bo) = base.bandwidth_pct();
    memory.row(["off-chip bandwidth % (app)".into(), ba.into()]);
    memory.row(["off-chip bandwidth % (OS)".into(), bo.into()]);
    report.push(memory);

    println!("{report}");
}
