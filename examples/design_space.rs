//! Design-space walk: the §4.2 implication that scale-out workloads would
//! be better served by many modest cores than by few aggressive ones.
//!
//! Compares, at equal issue slots, four 4-wide OoO cores (with and
//! without SMT), eight 2-wide OoO cores, and 2-wide in-order cores, on a
//! scale-out workload — the repository's ablation A1.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use cloudsuite::experiments::ablations;
use cloudsuite::harness::RunConfig;
use cloudsuite::Benchmark;

fn main() {
    let cfg = RunConfig::quick();
    let benches = [Benchmark::web_search(), Benchmark::data_serving()];
    let rows = ablations::a1_mediocre_cores(&benches, &cfg).expect("the quick config is valid");
    println!("{}", ablations::report_a1(&rows));
    for r in &rows {
        let gain = 100.0 * (r.narrow_x2 / r.wide - 1.0);
        println!(
            "{}: eight 2-wide cores deliver {:+.0}% aggregate throughput over four 4-wide cores",
            r.workload, gain
        );
    }
    println!("\n(The paper, §4.2: \"two independent 2-way cores would consume fewer");
    println!("resources while achieving higher aggregate performance.\")");
}
