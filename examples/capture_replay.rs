//! Trace capture and replay: record a workload window to a binary file,
//! reload it, and verify the replay is bit-identical — the suite's
//! analogue of the paper's re-used SAT Solver input traces (§3.1).
//!
//! ```sh
//! cargo run --release --example capture_replay
//! ```

use cs_trace::capture::RecordedTrace;
use cs_trace::{TraceSource, WorkloadProfile};

fn main() -> std::io::Result<()> {
    // Record 100k micro-ops of the Data Serving workload.
    let mut live = WorkloadProfile::data_serving().build_source(0, 2024);
    let trace = RecordedTrace::record(&mut live, 100_000);
    println!("recorded {} ops from '{}'", trace.len(), trace.label());

    // Save and reload through a file.
    let path = std::env::temp_dir().join("cloudsuite_demo.cstrace");
    let mut f = std::fs::File::create(&path)?;
    trace.save(&mut f)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("saved {} bytes to {} ({:.1} B/op)", bytes, path.display(), bytes as f64 / trace.len() as f64);

    let mut f = std::fs::File::open(&path)?;
    let loaded = RecordedTrace::load(&mut f)?;
    assert_eq!(loaded, trace, "roundtrip must be lossless");

    // Replay matches a fresh live source op for op (determinism).
    let mut fresh = WorkloadProfile::data_serving().build_source(0, 2024);
    let mut replay = loaded.into_source();
    let mut n = 0u64;
    while let Some(op) = replay.next_op() {
        assert_eq!(Some(op), fresh.next_op());
        n += 1;
    }
    println!("replayed {n} ops, bit-identical to the live source");
    std::fs::remove_file(&path)?;
    Ok(())
}
